"""Process Execution Control: blocking, ghosts, and prefetch cycles.

The data-driven cycle (paper SIV-C):

1.  A rank's synchronous read misses the global cache.  The MPI-IO
    library "holds the function call without a return and forks a ghost
    process to keep running on behalf of the normal process".  In this
    simulation the first miss opens a *cycle* and forks a ghost for every
    rank of the job at its current stream position -- ranks still
    computing join by blocking at their own next miss (or quota-full
    write).
2.  Each ghost replays its rank's op stream ahead: computation is
    re-executed (``ghost_compute_factor``), read requests are recorded but
    NOT issued, and the ghost pauses once the requests it recorded would
    fill the rank's reserved cache quota.
3.  Ghosts that outlive the expected cache-fill deadline are interrupted
    ("when the time period expires, all unfinished pre-executions are
    stopped").
4.  When every ghost has paused, CRM writes dirty data back, issues the
    sorted/merged/batched prefetch, and all blocked ranks resume.

Mis-prefetch bookkeeping: at the start of each cycle the fraction of the
*previous* cycle's prefetched chunks that went unused is reported to EMC
and the stale chunks are evicted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Segment
from repro.sim import Event, Interrupt, Process, all_of, any_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import DualParEngine
    from repro.mpi.runtime import MpiProcess

__all__ = ["Cycle", "Pec"]


@dataclass
class Cycle:
    cycle_id: int
    resume_event: Event
    #: rank -> file -> recorded read segments
    recorded: dict[int, dict[str, list[Segment]]] = field(default_factory=dict)
    ghosts: list[Process] = field(default_factory=list)
    blocked_ranks: set[int] = field(default_factory=set)
    started_at: float = 0.0
    deadline_s: float = 0.0
    issuing: bool = False

    def record(self, rank: int, file_name: str, segments) -> None:
        per_file = self.recorded.setdefault(rank, {})
        per_file.setdefault(file_name, []).extend(segments)

    @property
    def total_recorded_bytes(self) -> int:
        return sum(
            s.length
            for per_file in self.recorded.values()
            for segs in per_file.values()
            for s in segs
        )


class Pec:
    """One per DualPar job."""

    def __init__(self, engine: "DualParEngine"):
        self.engine = engine
        self.job = engine.job
        self.sim = engine.sim
        self.config = engine.config
        self._cycle: Optional[Cycle] = None
        self._cycle_counter = 0
        self.n_cycles = 0
        self.n_deadline_stops = 0
        self.n_fault_stops = 0
        #: (cycle_id, misprefetch_ratio) history
        self.misprefetch_history: list[tuple[int, float]] = []
        if self.sim.obs.enabled:
            reg = self.sim.obs.registry
            pre = f"pec.{self.job.name}"
            self._m_cycles = reg.counter(f"{pre}.cycles")
            self._m_deadline_stops = reg.counter(f"{pre}.deadline_stops")
            self._m_fault_stops = reg.counter(f"{pre}.fault_stops")
            self._ts_misprefetch = reg.timeseries(f"{pre}.misprefetch_ratio")
            self._tracer = self.sim.obs.tracer
        else:
            self._m_cycles = None
            self._m_deadline_stops = None
            self._m_fault_stops = None
            self._ts_misprefetch = None
            self._tracer = None

    # ------------------------------------------------------------------

    @property
    def current_cycle_id(self) -> int:
        return self._cycle_counter

    def block_on_miss(self, proc: "MpiProcess", op: IoOp) -> Event:
        """A rank's read missed; join (or open) a cycle and block."""
        cyc = self._ensure_cycle()
        # The missed op itself was already consumed by the normal cursor,
        # so the ghost will not see it: record its prediction here.
        cyc.record(proc.rank, op.file_name, op.prediction)
        cyc.blocked_ranks.add(proc.rank)
        return cyc.resume_event

    def block_on_quota(self, proc: "MpiProcess") -> Event:
        """A rank filled its dirty-write quota; block until writeback."""
        cyc = self._ensure_cycle()
        cyc.blocked_ranks.add(proc.rank)
        return cyc.resume_event

    def on_server_fault(self, server_index: int) -> None:
        """A data server crashed: any open pre-execution is planning
        batches that include it, so stop the ghosts now.  CRM then plans
        around the dead server ("all unfinished pre-executions are
        stopped" -- the paper's deadline rule, triggered early)."""
        cyc = self._cycle
        if cyc is None or cyc.issuing:
            return
        for g in cyc.ghosts:
            if g.is_alive:
                g.interrupt("server-fault")

    # ------------------------------------------------------------------

    def _ensure_cycle(self) -> Cycle:
        if self._cycle is not None:
            return self._cycle
        self._account_previous_cycle()
        self._cycle_counter += 1
        self.n_cycles += 1
        if self._m_cycles is not None:
            self._m_cycles.inc()
        cyc = Cycle(
            cycle_id=self._cycle_counter,
            resume_event=self.sim.event(),
            started_at=self.sim.now,
            deadline_s=self._fill_deadline_s(),
        )
        self._cycle = cyc
        for proc in self.job.procs:
            cyc.ghosts.append(
                self.sim.process(
                    self._ghost(cyc, proc), name=f"ghost-{self.job.name}:{proc.rank}"
                )
            )
        self.sim.process(self._controller(cyc), name=f"pec-{self.job.name}")
        return cyc

    def _account_previous_cycle(self) -> None:
        # Account the cycle BEFORE the previous one: ranks progress at
        # different speeds, so when one rank's miss opens cycle N+1 its
        # peers may legitimately still be consuming cycle-N data.  One
        # cycle of grace separates "not consumed yet" from "mis-prefetched";
        # genuinely wrong chunks (Table III) still flag within two cycles.
        target = self._cycle_counter - 1
        if target <= 0:
            return
        cache = self.engine.cache
        unused, total = cache.misprefetch_stats(self.job.job_id, target)
        if total > 0:
            ratio = unused / total
            self.misprefetch_history.append((target, ratio))
            if self._ts_misprefetch is not None:
                self._ts_misprefetch.record(self.sim.now, ratio)
            # simown: shared[central job registry on MDS; client->meta report]
            self.engine.system.report_misprefetch(self.engine, ratio)
            if ratio > self.config.misprefetch_threshold:
                # Only demonstrably wrong data is evicted; TTL ages out
                # the long tail.
                cache.purge_unused(self.job.job_id, target)

    def _fill_deadline_s(self) -> float:
        """Expected time to fill the quota from recent per-rank throughput."""
        cfg = self.config
        bytes_total = sum(
            p.metrics.bytes_read + p.metrics.bytes_written for p in self.job.procs
        )
        io_time = sum(p.metrics.io_time_s for p in self.job.procs)
        per_rank_rate = (
            bytes_total / io_time / max(self.job.nprocs, 1) if io_time > 0 else 0.0
        )
        per_rank_rate = max(per_rank_rate, 1e6)  # floor: 1 MB/s
        expected = cfg.quota_bytes / per_rank_rate
        return min(max(cfg.deadline_factor * expected, cfg.deadline_min_s), cfg.deadline_max_s)

    # ------------------------------------------------------------------

    def _ghost(self, cyc: Cycle, proc: "MpiProcess"):
        """Pre-execution of one rank: replay ahead, record reads."""
        sim = self.sim
        cfg = self.config
        budget = max(
            cfg.quota_bytes - self.engine.quota_of(proc.rank).dirty_bytes, 0
        )
        guard = self.engine.system.guard
        if guard is not None:
            # Guard backpressure: a job at its memory cap stops recording
            # almost immediately instead of planning unprefetchable data.
            headroom = guard.budget.job_headroom(self.job.job_id)
            if headroom < budget:
                budget = headroom
                guard.budget.record_blocked()
        planned = 0
        try:
            for op in proc.stream.peek():
                if isinstance(op, ComputeOp):
                    ghost_t = op.seconds * cfg.ghost_compute_factor
                    if ghost_t > 0:
                        yield sim.timeout(ghost_t)
                elif isinstance(op, BarrierOp):
                    # Ghosts do not synchronise; charge the wire cost only.
                    yield sim.timeout(self.job._barrier_cost_s())
                elif isinstance(op, IoOp) and op.op == "R":
                    cyc.record(proc.rank, op.file_name, op.prediction)
                    planned += sum(s.length for s in op.prediction)
                    if planned >= budget:
                        break
                # Writes are absorbed by the cache during normal execution;
                # the ghost neither issues nor records them.
        except Interrupt as exc:
            if exc.cause == "server-fault":
                self.n_fault_stops += 1
                if self._m_fault_stops is not None:
                    self._m_fault_stops.inc()
            else:
                self.n_deadline_stops += 1
                if self._m_deadline_stops is not None:
                    self._m_deadline_stops.inc()

    def _controller(self, cyc: Cycle):
        tr = self._tracer
        if tr is not None:
            # Async span: a job's cycles never overlap, but several jobs'
            # cycles can, each on its own track.
            with tr.span(
                "pec.cycle",
                track=f"pec.{self.job.name}",
                cat="dualpar",
                async_=True,
                cycle=cyc.cycle_id,
                deadline_s=cyc.deadline_s,
            ):
                yield from self._controller_body(cyc)
        else:
            yield from self._controller_body(cyc)

    def _controller_body(self, cyc: Cycle):
        sim = self.sim
        ghosts_done = all_of(sim, cyc.ghosts)
        deadline = sim.timeout(cyc.deadline_s)
        yield any_of(sim, [ghosts_done, deadline])
        for g in cyc.ghosts:
            if g.is_alive:
                g.interrupt("fill-deadline")
        yield all_of(sim, cyc.ghosts)
        cyc.issuing = True
        yield from self.engine.crm.run_cycle(cyc)
        self._cycle = None
        cyc.resume_event.succeed(cyc.cycle_id)
