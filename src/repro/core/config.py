"""DualPar configuration: every threshold the paper names, one knob each."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DualParConfig"]


@dataclass(frozen=True)
class DualParConfig:
    """Defaults are the paper's prototype values."""

    #: Per-process cache quota ("each process has 1MB quota in the cache").
    quota_bytes: int = 1024 * 1024

    #: aveSeekDist/aveReqDist must exceed this to enter data-driven mode
    #: ("The default T_improvement value is 3 in our prototype").
    t_improvement: float = 3.0

    #: Minimum I/O ratio to enter data-driven mode ("larger than 80% in
    #: our prototype").
    io_ratio_enter: float = 0.80

    #: I/O ratio below which a data-driven program reverts to normal.
    #: (The paper reverts "when the condition no longer holds"; the seek-
    #: distance condition is unobservable once the mode has fixed it, so
    #: the exit test uses the I/O ratio with hysteresis -- see DESIGN.md.)
    io_ratio_exit: float = 0.70

    #: Mis-prefetch ratio above which the mode is disabled ("20% by
    #: default in the prototype").
    misprefetch_threshold: float = 0.20

    #: Once disabled by mis-prefetching, stay disabled ("a large
    #: mis-prefetching miss ratio will turn off the data-driven mode. So
    #: this is a one-time overhead").
    misprefetch_lockout: bool = True

    #: Holes up to this many bytes between sorted requests are absorbed
    #: (reads: fetched too; writes: read-modify-write).
    hole_threshold_bytes: int = 64 * 1024

    #: Ghost pre-executions are stopped this factor past the expected
    #: cache-fill time.
    deadline_factor: float = 2.0
    deadline_min_s: float = 0.05
    deadline_max_s: float = 10.0

    #: EMC evaluation period.
    emc_interval_s: float = 1.0

    #: Window over which I/O ratio and ReqDist are measured.
    metric_window_s: float = 2.0

    #: Fraction of recorded computation the ghost re-executes (1.0 =
    #: faithful re-execution as DualPar does; 0.0 = slicing away all
    #: computation as Strategy 2 does -- ablation knob).
    ghost_compute_factor: float = 1.0

    #: Pin the mode instead of letting EMC decide (experiment control:
    #: "For execution with DualPar, programs stay in the data-driven
    #: mode" in SV-B).
    force_mode: Optional[str] = None

    #: Engine used while in normal (computation-driven) mode.
    normal_engine: str = "vanilla"  # 'vanilla' | 'collective'

    #: Use list I/O for batched CRM issue (ablation knob).
    use_list_io: bool = True

    #: Fill holes when merging recorded requests (ablation knob).
    fill_holes: bool = True

    def __post_init__(self) -> None:
        if self.quota_bytes < 0:
            raise ValueError("quota_bytes must be non-negative")
        if not 0 <= self.io_ratio_enter <= 1 or not 0 <= self.io_ratio_exit <= 1:
            raise ValueError("I/O ratio thresholds must be in [0, 1]")
        if self.io_ratio_exit > self.io_ratio_enter:
            raise ValueError("exit threshold must not exceed enter threshold")
        if self.t_improvement <= 0:
            raise ValueError("t_improvement must be positive")
        if not 0 <= self.misprefetch_threshold <= 1:
            raise ValueError("misprefetch_threshold must be in [0, 1]")
        if self.force_mode not in (None, "normal", "datadriven"):
            raise ValueError(f"bad force_mode {self.force_mode!r}")
        if self.normal_engine not in ("vanilla", "collective"):
            raise ValueError(f"bad normal_engine {self.normal_engine!r}")
