"""DualParSystem: one per cluster, wiring EMC, recorders, and engines."""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.config import DualParConfig
from repro.core.emc import EmcDaemon
from repro.core.metrics import JobIoSampler, RequestRecorder
from repro.mpi.ops import IoOp

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import DualParEngine
    from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime

__all__ = ["DualParSystem"]


class DualParSystem:
    """Cluster-wide DualPar infrastructure.

    Create one per :class:`~repro.mpi.runtime.MpiRuntime`, then launch
    jobs with :meth:`engine_factory`:

    >>> system = DualParSystem(runtime)                      # doctest: +SKIP
    >>> job = runtime.launch("app", 64, workload,
    ...                      system.engine_factory())        # doctest: +SKIP
    """

    def __init__(self, runtime: "MpiRuntime", config: Optional[DualParConfig] = None):
        self.runtime = runtime
        self.config = config or DualParConfig()
        spec = runtime.cluster.spec
        self.recorders: dict[int, RequestRecorder] = {
            spec.compute_node_id(i): RequestRecorder(
                spec.compute_node_id(i), window_s=self.config.metric_window_s
            )
            for i in range(spec.n_compute_nodes)
        }
        self.engines: dict[int, "DualParEngine"] = {}
        self._samplers: dict[int, JobIoSampler] = {}
        #: (time, job name, new mode) transitions, for Fig-7 style analysis.
        self.transitions: list[tuple[float, str, str]] = []
        sim = runtime.sim
        self._transition_counter = (
            sim.obs.registry.counter("emc.mode_transitions")
            if sim.obs.enabled
            else None
        )
        self._tracer = sim.obs.tracer if sim.obs.enabled else None
        #: Fault-injection attachments (None nominally): the injector and
        #: the ServerHealth map it maintains.
        self.faults = None
        self.health = None
        #: Safety governor (repro.guard.SafetyGovernor) when one is
        #: attached; None nominally.  When set, EMC delegates per-job mode
        #: decisions (and mis-prefetch reports) to its state machines.
        self.guard = None
        self.emc = EmcDaemon(self, self.config)

    # -- fault fan-out ---------------------------------------------------

    def on_server_fault(self, server_index: int) -> None:
        """A data server crashed: every engine's PEC stops pre-executing
        for it (the open cycle's batch plan is stale)."""
        for job_id in sorted(self.engines):
            # simown: shared[fault fan-out; harness-driven world pause]
            self.engines[job_id].pec.on_server_fault(server_index)

    def on_compute_node_fault(self, node_id: int) -> None:
        """A cache node was evicted: CRMs re-elect lost coordinators."""
        for job_id in sorted(self.engines):
            # simown: shared[fault fan-out; harness-driven world pause]
            self.engines[job_id].crm.on_node_fault(node_id)

    # ------------------------------------------------------------------

    def engine_factory(self, **overrides) -> Callable:
        """A factory suitable for ``MpiRuntime.launch(engine_factory=...)``.

        Keyword overrides replace fields of this system's base config for
        the launched job only (e.g. ``force_mode="datadriven"``).
        """
        config = (
            dataclasses.replace(self.config, **overrides) if overrides else self.config
        )

        def factory(runtime: "MpiRuntime", job: "MpiJob"):
            from repro.core.engine import DualParEngine

            return DualParEngine(runtime, job, system=self, config=config)

        return factory

    # ------------------------------------------------------------------

    def register(self, engine: "DualParEngine") -> None:
        self.engines[engine.job.job_id] = engine
        self._samplers[engine.job.job_id] = JobIoSampler(engine.job)

    def unregister(self, engine: "DualParEngine") -> None:
        self.engines.pop(engine.job.job_id, None)
        self._samplers.pop(engine.job.job_id, None)

    def sampler_of(self, engine: "DualParEngine") -> JobIoSampler:
        return self._samplers[engine.job.job_id]

    def record_request(self, proc: "MpiProcess", op: IoOp) -> None:
        rec = self.recorders.get(proc.node_id)
        if rec is None:
            return
        now = self.runtime.sim.now
        for seg in op.segments:
            rec.record(now, op.file_name, seg.offset, seg.length)

    def log_transition(self, job: "MpiJob", mode: str) -> None:
        self.transitions.append((self.runtime.sim.now, job.name, mode))
        if self._transition_counter is not None:
            self._transition_counter.inc()
            self._tracer.instant(
                "emc.mode_transition", track="emc", cat="dualpar",
                job=job.name, mode=mode,
            )

    def report_misprefetch(self, engine: "DualParEngine", ratio: float) -> None:
        self.emc.report_misprefetch(engine, ratio)
