"""The DualPar ADIO interception engine.

In *normal* (computation-driven) mode every call is delegated to the
configured baseline engine (vanilla or collective) -- DualPar "is
minimally intrusive to a well-behaved system".  In *data-driven* mode:

- reads are served from the global cache; a miss blocks the call and
  joins a pre-execution cycle (see :mod:`repro.core.pec`); if the data is
  still missing after the cycle (mis-prediction), the read falls through
  to a direct synchronous request;
- writes land in the cache as dirty chunks; a rank whose quota fills
  blocks until the next cycle writes everything back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.cache.chunk import ChunkKey, chunk_range
from repro.cache.memcache import GlobalCache
from repro.cache.quota import QuotaTracker
from repro.core.config import DualParConfig
from repro.core.crm import Crm
from repro.core.pec import Pec
from repro.mpi.ops import IoOp, Segment
from repro.mpiio.collective import CollectiveEngine
from repro.mpiio.engine import IndependentEngine, IoEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.system import DualParSystem
    from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime

__all__ = ["DualParEngine"]


class DualParEngine(IoEngine):
    """The DualPar ADIO interception layer: delegates to the normal
    engine in computation-driven mode; serves reads from the global cache
    and buffers writes in data-driven mode."""

    name = "dualpar"

    def __init__(
        self,
        runtime: "MpiRuntime",
        job: "MpiJob",
        system: "DualParSystem",
        config: DualParConfig,
    ):
        super().__init__(runtime, job)
        self.system = system
        self.config = config
        self.cache: GlobalCache = runtime.global_cache
        if config.normal_engine == "collective":
            self.normal: IoEngine = CollectiveEngine(runtime, job)
        else:
            self.normal = IndependentEngine(runtime, job)
        self.pec = Pec(self)
        self.crm = Crm(self)
        self._quotas: dict[int, QuotaTracker] = {}
        self._crm_streams: dict[int, int] = {}
        self._finished_ranks = 0
        #: Set when mis-prefetching disabled the mode permanently.
        self.locked_out = False
        self.n_cache_hits = 0
        self.n_cache_misses = 0
        self.n_direct_fallback_bytes = 0

    # ------------------------------------------------------------------

    def quota_of(self, rank: int) -> QuotaTracker:
        q = self._quotas.get(rank)
        if q is None:
            q = QuotaTracker(self.config.quota_bytes)
            self._quotas[rank] = q
        return q

    def crm_stream_id(self, node: int) -> int:
        sid = self._crm_streams.get(node)
        if sid is None:
            sid = self.runtime._next_stream_id()
            self._crm_streams[node] = sid
        return sid

    def set_mode(self, mode: str) -> None:
        """EMC's lever.  Leaving data-driven mode flushes dirty data."""
        if mode not in ("normal", "datadriven"):
            raise ValueError(f"bad mode {mode!r}")
        if mode == self.job.mode:
            return
        self.job.mode = mode
        # simown: shared[central job registry on MDS; client->meta report]
        self.system.log_transition(self.job, mode)
        if mode == "normal" and self.cache.dirty_chunks(self.job.job_id):
            self.sim.process(self.crm.writeback_all(), name=f"flush-{self.job.name}")

    # ------------------------------------------------------------------

    def on_job_start(self) -> None:
        if self.config.force_mode is not None:
            self.job.mode = self.config.force_mode
        # simown: shared[central job registry on MDS; client->meta report]
        self.system.register(self)

    def on_job_end(self) -> None:
        # simown: shared[central job registry on MDS; client->meta report]
        self.system.unregister(self)
        self.cache.purge_job(self.job.job_id)

    def finalize_rank(self, proc: "MpiProcess") -> Generator:
        self._finished_ranks += 1
        if self._finished_ranks == self.job.nprocs:
            # Last rank out flushes whatever is still dirty so write
            # throughput measurements include the final writeback.
            yield from self.crm.writeback_all()

    # ------------------------------------------------------------------

    def do_io(self, proc: "MpiProcess", op: IoOp) -> Generator:
        # simown: shared[central job registry on MDS; client->meta report]
        self.system.record_request(proc, op)
        # A zero quota means no cache space at all: the data-driven mode
        # is "essentially disabled" (Fig 8's 0 KB point) regardless of
        # what EMC or force_mode says.  An open guard circuit breaker
        # likewise bypasses the cache (degraded mode) until a half-open
        # probe closes it again.
        guard = self.system.guard
        if (
            self.job.mode != "datadriven"
            or self.config.quota_bytes == 0
            or (guard is not None and not guard.cache_allowed())
        ):
            yield from self.normal.do_io(proc, op)
            return
        if op.op == "R":
            yield from self._dd_read(proc, op)
        else:
            yield from self._dd_write(proc, op)

    # ------------------------------------------------------------- reads

    def _consume(self, proc: "MpiProcess", file_name: str, ranges) -> Generator:
        """Serve byte ranges from the cache; generator returns the misses.

        One multi-get covers the whole MPI-IO call (the instrumented
        library fetches all the call's chunks from Memcached in a batch).
        """
        cb = self.cache.chunk_bytes
        wants: list[tuple[ChunkKey, int]] = []
        spans: list[tuple[ChunkKey, int, int]] = []
        for lo, hi in ranges:
            for idx in chunk_range(lo, hi - lo, cb):
                c_lo = max(lo, idx * cb)
                c_hi = min(hi, (idx + 1) * cb)
                key = ChunkKey(file_name, idx)
                wants.append((key, c_hi - c_lo))
                spans.append((key, c_lo, c_hi))
        guard = self.system.guard
        started_at = self.sim.now
        hits = yield from self.cache.multiget(wants, proc.node_id)
        if guard is not None:
            # The breaker scores every batched multi-get by its latency.
            guard.record_cache_op(self.sim.now - started_at)
        missing: list[tuple[int, int]] = []
        for key, c_lo, c_hi in spans:
            if hits.get(key):
                self.n_cache_hits += 1
            else:
                self.n_cache_misses += 1
                missing.append((c_lo, c_hi))
        return missing

    def _dd_read(self, proc: "MpiProcess", op: IoOp) -> Generator:
        ranges = [(s.offset, s.end) for s in op.segments]
        missing = yield from self._consume(proc, op.file_name, ranges)
        if not missing:
            return
        op_pos = proc.stream.n_consumed
        if proc.cycle_attempted_at != op_pos and self.job.mode == "datadriven":
            proc.cycle_attempted_at = op_pos
            resume = self.pec.block_on_miss(proc, op)
            yield resume
            missing = yield from self._consume(proc, op.file_name, missing)
            if not missing:
                return
        # Mis-prediction (or a mode flip mid-block): direct synchronous
        # reads for whatever is still absent.
        f = self.lookup_file(op.file_name)
        client = self.client_of(proc)
        for lo, hi in missing:
            self.n_direct_fallback_bytes += hi - lo
            yield from client.io(f, lo, hi - lo, "R", proc.stream_id)

    # ------------------------------------------------------------- writes

    def _dd_write(self, proc: "MpiProcess", op: IoOp) -> Generator:
        cb = self.cache.chunk_bytes
        quota = self.quota_of(proc.rank)
        puts = []
        for seg in op.segments:
            for idx in chunk_range(seg.offset, seg.length, cb):
                c_lo = max(seg.offset, idx * cb)
                c_hi = min(seg.end, (idx + 1) * cb)
                puts.append((ChunkKey(op.file_name, idx), (c_lo, c_hi)))
            quota.add_dirty(seg.length)
        yield from self.cache.multiput(
            puts,
            from_node=proc.node_id,
            cycle_id=self.pec.current_cycle_id,
            job_id=self.job.job_id,
        )
        if quota.full:
            yield self.pec.block_on_quota(proc)
