"""Cache and Request Management: batched prefetch and writeback.

CRM turns the requests a cycle recorded into the fewest, largest, best-
ordered server requests (paper SIV-D):

- requests from *all* processes of the program are pooled per compute
  node, sorted by file offset, and adjacent requests merged;
- small holes between merged requests are absorbed -- for reads the hole
  data is simply fetched too, for writes the holes are first *read* so
  the covering extent can be written back whole (read-modify-write);
- the resulting extents are issued with list I/O in ascending offset
  order, all at once, so every data server's elevator sees a deep sorted
  queue.

Prefetched chunks are stored into the global cache (round-robin owners);
dirty chunks are written back from their owner nodes and marked clean.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.cache.chunk import ChunkKey, chunk_range
from repro.mpi.ops import Segment
from repro.mpiio.datasieve import coalesce_segments
from repro.mpiio.listio import batch_io
from repro.sim import all_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import DualParEngine
    from repro.core.pec import Cycle

__all__ = ["Crm"]


class Crm:
    """One per DualPar job (operating per compute node internally)."""

    def __init__(self, engine: "DualParEngine"):
        self.engine = engine
        self.sim = engine.sim
        self.config = engine.config
        self.n_prefetch_batches = 0
        self.n_writeback_batches = 0
        self.prefetched_bytes = 0
        self.writeback_bytes = 0
        #: The node whose CRM leads span partitioning: first in every
        #: node list.  Nominally node 0, re-elected if evicted.
        spec = engine.runtime.cluster.spec
        self.coordinator_node = spec.compute_node_id(0)
        self.n_reelections = 0
        self.n_deferred_prefetch_chunks = 0
        self.n_deferred_writeback_chunks = 0
        if self.sim.obs.enabled:
            reg = self.sim.obs.registry
            pre = f"crm.{engine.job.name}"
            self._m_prefetched = reg.counter(f"{pre}.prefetched_bytes")
            self._m_writeback = reg.counter(f"{pre}.writeback_bytes")
            self._m_pf_batches = reg.counter(f"{pre}.prefetch_batches")
            self._m_wb_batches = reg.counter(f"{pre}.writeback_batches")
            self._tracer = self.sim.obs.tracer
        else:
            self._m_prefetched = None
            self._m_writeback = None
            self._m_pf_batches = None
            self._m_wb_batches = None
            self._tracer = None

    # ------------------------------------------------------------------

    def _live_nodes(self) -> list[int]:
        """Compute nodes available for CRM batch work, coordinator first.

        Nominally every node, in id order (the coordinator is node 0, so
        the order -- and therefore every batch plan -- is unchanged from
        the pre-fault code).  Under cache-node eviction the evicted nodes
        drop out.
        """
        spec = self.engine.runtime.cluster.spec
        nodes = [spec.compute_node_id(i) for i in range(spec.n_compute_nodes)]
        faults = self.engine.system.faults
        if faults is not None:
            live = faults.live_compute_nodes()
            nodes = [n for n in nodes if n in live]
        if self.coordinator_node in nodes and nodes[0] != self.coordinator_node:
            nodes.remove(self.coordinator_node)
            nodes.insert(0, self.coordinator_node)
        return nodes

    def on_node_fault(self, node_id: int) -> None:
        """A compute node left (cache eviction): re-elect the coordinator
        if it was the one lost -- lowest live node id wins."""
        if node_id != self.coordinator_node:
            return
        live = self._live_nodes()
        self.coordinator_node = live[0]
        self.n_reelections += 1
        if self._tracer is not None:
            self._tracer.instant(
                "crm.reelection",
                track="faults",
                cat="fault",
                old=node_id,
                new=self.coordinator_node,
            )

    def _spans_dead_server(self, f, offset: int, length: int, live: frozenset) -> bool:
        """Does [offset, offset+length) of ``f`` touch a down server?"""
        return any(p.server not in live for p in f.layout.split_coalesced(offset, length))

    # ------------------------------------------------------------------

    def run_cycle(self, cyc: "Cycle"):
        """Writeback first, then prefetch; both batched per node."""
        yield from self.writeback_all()
        yield from self._prefetch(cyc)

    # ---------------------------------------------------------- prefetch

    def _chunks_needed(self, cyc: "Cycle") -> dict[int, dict[str, list[int]]]:
        """node -> file -> sorted chunk indices to fetch.

        Chunks are deduplicated globally (several ranks on several nodes
        often record overlapping data), then the sorted chunk list of each
        file is partitioned into *contiguous spans*, one per compute node:
        each node issues one large, mostly-sequential batched read and then
        distributes the chunks to their cache owners.  Contiguity at the
        fetcher is what lets the data servers' elevators build long
        sequential sweeps.
        """
        cache = self.engine.cache
        cb = cache.chunk_bytes
        fs = self.engine.runtime.cluster.fs
        nodes = self._live_nodes()
        # simown: shared[MDS health query; becomes a meta RPC]
        live_servers = self.engine.system.emc.live_servers()
        wanted: dict[str, set[int]] = {}
        for per_file in cyc.recorded.values():
            for file_name, segs in per_file.items():
                try:
                    f = fs.lookup(file_name)
                except FileNotFoundError:
                    continue  # a mis-predicted file name
                bucket = wanted.setdefault(file_name, set())
                for seg in segs:
                    end = min(seg.end, f.size)
                    if seg.offset >= end:
                        continue
                    for idx in chunk_range(seg.offset, end - seg.offset, cb):
                        if cache.contains(ChunkKey(file_name, idx)):
                            continue
                        if live_servers is not None:
                            lo = idx * cb
                            ln = min(lo + cb, f.size) - lo
                            if self._spans_dead_server(f, lo, ln, live_servers):
                                # Striped on a dead server: defer; the
                                # blocked rank falls back to a direct
                                # (retrying) read after the cycle.
                                self.n_deferred_prefetch_chunks += 1
                                continue
                        bucket.add(idx)
        guard = self.engine.system.guard
        if guard is not None:
            # Budget backpressure: cap the plan at the job's remaining
            # headroom, shedding the highest chunk indices (the furthest-
            # ahead, lowest-priority predictions) file by file.
            allow = guard.budget.job_headroom(self.engine.job.job_id) // cb
            for file_name in list(wanted):
                indices = sorted(wanted[file_name])
                if len(indices) > allow:
                    guard.budget.record_shed_plan(len(indices) - allow)
                    indices = indices[:allow]
                    wanted[file_name] = set(indices)
                allow -= len(indices)
        out: dict[int, dict[str, list[int]]] = {}
        for file_name, idx_set in wanted.items():
            indices = sorted(idx_set)
            if not indices:
                continue
            span = -(-len(indices) // len(nodes))
            for i, node in enumerate(nodes):
                part = indices[i * span : (i + 1) * span]
                if part:
                    out.setdefault(node, {}).setdefault(file_name, []).extend(part)
        return out

    def _prefetch(self, cyc: "Cycle"):
        sim = self.sim
        cache = self.engine.cache
        cb = cache.chunk_bytes
        fs = self.engine.runtime.cluster.fs
        needed = self._chunks_needed(cyc)
        node_procs = []
        for node, per_file in sorted(needed.items()):
            if not any(per_file.values()):
                continue
            node_procs.append(
                sim.process(
                    self._prefetch_node(node, per_file), name=f"crm-pf-n{node}"
                )
            )
        if node_procs:
            self.n_prefetch_batches += 1
            if self._m_pf_batches is not None:
                self._m_pf_batches.inc()
            yield all_of(sim, node_procs)

    def _prefetch_node(self, node: int, per_file: dict[str, list[int]]):
        """One node's CRM fetches its span of chunks, sorted+merged."""
        cache = self.engine.cache
        cb = cache.chunk_bytes
        fs = self.engine.runtime.cluster.fs
        client = self.engine.runtime.cluster.clients[node]
        stream_id = self.engine.crm_stream_id(node)
        hole = self.config.hole_threshold_bytes if self.config.fill_holes else 0
        pending = []
        for file_name in sorted(per_file):
            indices = sorted(set(per_file[file_name]))
            if not indices:
                continue
            f = fs.lookup(file_name)
            segs = []
            for idx in indices:
                lo = idx * cb
                hi = min(lo + cb, f.size)
                if hi > lo:
                    segs.append(Segment(lo, hi - lo))
            merged = coalesce_segments(segs, hole_threshold=hole)
            total = sum(s.length for s in merged)
            if self.config.use_list_io:
                yield from batch_io(client, f, merged, "R", stream_id)
            else:
                for seg in merged:
                    yield from client.io(f, seg.offset, seg.length, "R", stream_id)
            self.prefetched_bytes += total
            if self._m_prefetched is not None:
                self._m_prefetched.inc(total)
            # Store every covered chunk (hole-filled data is cached too):
            # one batched multiput scatters the chunks to their owners, in
            # the background -- cache inserts pipeline behind the fetch.
            puts = []
            for seg in merged:
                for idx in chunk_range(seg.offset, seg.length, cb):
                    puts.append((ChunkKey(file_name, idx), None))
            if puts:
                pending.append(
                    self.sim.process(
                        cache.multiput(
                            puts,
                            from_node=node,
                            cycle_id=self.engine.pec.current_cycle_id,
                            job_id=self.engine.job.job_id,
                        ),
                        name="crm-put",
                    )
                )
        if pending:
            yield all_of(self.sim, pending)

    # --------------------------------------------------------- writeback

    def writeback_all(self):
        """Write every dirty chunk of this job back, batched per owner node."""
        cache = self.engine.cache
        fs = self.engine.runtime.cluster.fs
        dirty = cache.dirty_chunks(self.engine.job.job_id)
        # simown: shared[MDS health query; becomes a meta RPC]
        live_servers = self.engine.system.emc.live_servers()
        if live_servers is not None and dirty:
            cb = cache.chunk_bytes
            writable = []
            for chunk in dirty:
                try:
                    f = fs.lookup(chunk.key.file_name)
                except FileNotFoundError:
                    writable.append(chunk)
                    continue
                lo = chunk.key.index * cb
                ln = max(min(lo + cb, f.size) - lo, 1)
                if self._spans_dead_server(f, lo, ln, live_servers):
                    # Stays dirty in the cache until the server returns;
                    # a later cycle (or job finalize) writes it back.
                    self.n_deferred_writeback_chunks += 1
                else:
                    writable.append(chunk)
            dirty = writable
        if not dirty:
            return
        by_node: dict[int, dict[str, list[Segment]]] = {}
        for chunk in dirty:
            per_file = by_node.setdefault(chunk.owner_node, {})
            segs = per_file.setdefault(chunk.key.file_name, [])
            for s, e in chunk.dirty_ranges:
                segs.append(Segment(s, e - s))
        node_procs = [
            self.sim.process(
                self._writeback_node(node, per_file), name=f"crm-wb-n{node}"
            )
            for node, per_file in sorted(by_node.items())
        ]
        self.n_writeback_batches += 1
        if self._m_wb_batches is not None:
            self._m_wb_batches.inc()
        yield all_of(self.sim, node_procs)
        for chunk in dirty:
            cache.clean(chunk.key)
        for rank in range(self.engine.job.nprocs):
            self.engine.quota_of(rank).reset_dirty()

    def _writeback_node(self, node: int, per_file: dict[str, list[Segment]]):
        fs = self.engine.runtime.cluster.fs
        client = self.engine.runtime.cluster.clients[node]
        stream_id = self.engine.crm_stream_id(node)
        hole = self.config.hole_threshold_bytes if self.config.fill_holes else 0
        for file_name in sorted(per_file):
            f = fs.lookup(file_name)
            segs = per_file[file_name]
            exact = coalesce_segments(segs, hole_threshold=0)
            merged = coalesce_segments(segs, hole_threshold=hole)
            covered = sum(s.length for s in merged)
            requested = sum(s.length for s in exact)
            to_write = merged
            if covered > requested:
                # Holes bridged: read-modify-write the covering extents.
                yield from batch_io(client, f, merged, "R", stream_id)
            if self.config.use_list_io:
                yield from batch_io(client, f, to_write, "W", stream_id)
            else:
                for seg in to_write:
                    yield from client.io(f, seg.offset, seg.length, "W", stream_id)
            self.writeback_bytes += requested
            if self._m_writeback is not None:
                self._m_writeback.inc(requested)
