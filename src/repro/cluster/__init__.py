"""Cluster assembly: wire simulator, network, disks, PFS, and daemons.

:class:`ClusterSpec` captures the testbed configuration (defaults are a
scaled-down Darwin: 9 data servers + 1 metadata server, GigE, CFQ, 64 KB
striping); :func:`build_cluster` instantiates a ready-to-run
:class:`Cluster`.
"""

from repro.cluster.spec import ClusterSpec, paper_spec
from repro.cluster.builder import Cluster, build_cluster

__all__ = ["Cluster", "ClusterSpec", "build_cluster", "paper_spec"]
