"""Build a runnable cluster from a spec."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.spec import ClusterSpec
from repro.disk.drive import DiskDrive
from repro.disk.raid import RaidArray
from repro.iosched import BlockLayer, make_scheduler
from repro.net.ethernet import Network
from repro.pfs.client import PfsClient
from repro.pfs.dataserver import DataServer, LocalityDaemon
from repro.pfs.filesystem import ExtentAllocator, FileSystem
from repro.pfs.layout import StripeLayout
from repro.pfs.metaserver import MetadataServer
from repro.sim import Simulator
from repro.trace.blktrace import BlkTrace

__all__ = ["Cluster", "build_cluster"]


@dataclass
class Cluster:
    """Everything needed to run experiments against one simulated testbed."""

    sim: Simulator
    spec: ClusterSpec
    network: Network
    fs: FileSystem
    data_servers: list[DataServer]
    metadata_server: MetadataServer
    clients: list[PfsClient]
    locality_daemons: list[LocalityDaemon]
    traces: list[Optional[BlkTrace]] = field(default_factory=list)

    def client_for_node(self, node_id: int) -> PfsClient:
        return self.clients[node_id]

    def total_bytes_served(self) -> int:
        return sum(ds.bytes_served for ds in self.data_servers)

    def mean_queue_depth(self) -> float:
        depths = [ds.block_layer.stats.mean_queue_depth for ds in self.data_servers]
        return sum(depths) / len(depths)


def build_cluster(
    spec: Optional[ClusterSpec] = None, observe=None, workers: Optional[int] = None
) -> Cluster:
    """Instantiate a ready-to-run :class:`Cluster` from ``spec``
    (defaults to :class:`ClusterSpec`'s Darwin-like configuration).

    ``observe`` is an optional :class:`repro.obs.Observability` layer;
    when given, every component registers its instruments there.
    ``workers`` requests a sharded simulation (default: the
    ``REPRO_SIM_WORKERS`` environment variable).  The full cluster model
    still crosses LP boundaries through :meth:`Network.transfer`, which
    holds sender and receiver NICs simultaneously (a zero-lookahead
    edge), so it cannot shard yet: a request for more than one worker
    falls back to the serial calendar-queue run -- bit-identical to
    ``workers=1`` -- and is recorded on the ``pdes.fallback`` counter.
    The shardable cell model lives in :mod:`repro.sim.pdes.cell`.
    """

    spec = spec or ClusterSpec()
    sim = Simulator(observe=observe, workers=workers)
    if sim.workers > 1 and sim.obs.enabled:
        sim.obs.registry.counter("pdes.fallback").inc()
    network = Network(sim, spec.n_nodes, spec.network)
    layout = StripeLayout(spec.n_data_servers, spec.stripe_unit)

    data_servers: list[DataServer] = []
    daemons: list[LocalityDaemon] = []
    traces: list[Optional[BlkTrace]] = []
    allocators: list[ExtentAllocator] = []
    devices = []

    registry = sim.obs.registry if sim.obs.enabled else None
    for i in range(spec.n_data_servers):
        trace = (
            BlkTrace(name=f"server{i}", registry=registry)
            if spec.trace_disks
            else None
        )
        # NB: BlkTrace defines __len__, so an empty trace is falsy --
        # compare against None explicitly.
        hook = trace.hook if trace is not None else None
        if spec.raid_members == 1:
            device = DiskDrive(sim, spec.disk, name=f"disk{i}", on_access=hook)
        else:
            members = [
                DiskDrive(sim, spec.disk, name=f"disk{i}.{m}", on_access=hook if m == 0 else None)
                for m in range(spec.raid_members)
            ]
            device = RaidArray(sim, members, level=spec.raid_level, name=f"raid{i}")
        devices.append(device)
        traces.append(trace)
        allocators.append(
            ExtentAllocator(device.total_sectors, placement=spec.placement)
        )

    fs = FileSystem(layout, allocators)

    for i, device in enumerate(devices):
        blk = BlockLayer(
            sim, device, make_scheduler(spec.io_scheduler), name=f"blk{i}"
        )
        ds = DataServer(
            sim,
            server_index=i,
            node_id=spec.data_server_node_id(i),
            network=network,
            fs=fs,
            device=device,
            block_layer=blk,
            writeback_interval_s=spec.server_writeback_interval_s,
        )
        if ds.writeback is not None:
            ds.writeback.max_dirty_bytes = spec.server_writeback_max_dirty
        data_servers.append(ds)
        daemons.append(
            LocalityDaemon(sim, device, interval_s=spec.locality_interval_s, name=f"loc{i}")
        )

    mds = MetadataServer(sim, spec.metadata_node_id, network, fs)

    san = sim._sanitizer
    if san is not None and san.ownership is not None:
        # Dynamic simown topology: client nodes get an LP label so a
        # reply transfer grants the right side, and the per-server
        # locality daemons adopt their server's LP.  (Servers, block
        # layers, devices and the MDS tag themselves at construction.)
        own = san.ownership
        for i in range(spec.n_compute_nodes):
            node = spec.compute_node_id(i)
            own.map_node(node, f"client:node{node}")
        for ds, daemon in zip(data_servers, daemons):
            own.tag(daemon, f"server:ds{ds.server_index}")

    clients = [
        PfsClient(
            sim,
            node_id=spec.compute_node_id(i),
            network=network,
            servers=data_servers,
            layout=layout,
        )
        for i in range(spec.n_compute_nodes)
    ]

    return Cluster(
        sim=sim,
        spec=spec,
        network=network,
        fs=fs,
        data_servers=data_servers,
        metadata_server=mds,
        clients=clients,
        locality_daemons=daemons,
        traces=traces,
    )
