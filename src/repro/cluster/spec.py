"""Cluster configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.disk.drive import DiskParams
from repro.net.ethernet import NetworkParams

__all__ = ["ClusterSpec", "paper_spec"]


def paper_spec(n_compute_nodes: int = 32, **overrides) -> "ClusterSpec":
    """The Darwin-like configuration the benchmarks run on.

    The paper spreads 64-256 MPI processes across ~107 compute nodes (1-2
    ranks per node); 32 simulated compute nodes keeps that low rank-per-NIC
    density while bounding event counts.  Data-server side matches the
    paper: 9 servers, CFQ, 64 KB striping.
    """
    return ClusterSpec(n_compute_nodes=n_compute_nodes, **overrides)


@dataclass(frozen=True)
class ClusterSpec:
    """A scaled-down Darwin-like testbed.

    The paper's cluster: 120 nodes, 9 PVFS2 data servers (one doubling as
    metadata server), two-disk RAID per server, GigE, CFQ, 64 KB stripes.
    Simulation defaults keep that shape with fewer compute nodes; every
    knob the experiments sweep is explicit here.
    """

    n_compute_nodes: int = 8
    n_data_servers: int = 9
    disk: DiskParams = field(default_factory=lambda: DiskParams(capacity_bytes=100 * 10**9))
    network: NetworkParams = field(default_factory=NetworkParams)
    io_scheduler: str = "cfq"
    stripe_unit: int = 64 * 1024
    #: Extent placement on server disks ('spread' | 'packed').
    placement: str = "spread"
    #: RAID members per data server (1 = plain disk, 2 = the Darwin pair).
    raid_members: int = 1
    raid_level: int = 0
    #: Attach a BlkTrace to every data-server disk.
    trace_disks: bool = False
    #: Locality-daemon sampling interval (paper: constant time slots).
    locality_interval_s: float = 0.5
    #: Server-side write-back caching: None = write-through (the
    #: calibrated default); a number enables a kernel-flusher-style
    #: buffer flushed every that-many seconds (the paper's servers force
    #: dirty writeback every 1.0 s).
    server_writeback_interval_s: "float | None" = None
    #: Dirty-memory cap per server before writes throttle to the disk
    #: (only meaningful with write-back enabled).
    server_writeback_max_dirty: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.n_compute_nodes < 1 or self.n_data_servers < 1:
            raise ValueError("need at least one compute node and one data server")
        if self.raid_members < 1:
            raise ValueError("raid_members must be >= 1")

    # -- node-id layout -------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.n_compute_nodes + self.n_data_servers + 1

    def compute_node_id(self, i: int) -> int:
        if not 0 <= i < self.n_compute_nodes:
            raise ValueError(f"compute node {i} out of range")
        return i

    def data_server_node_id(self, i: int) -> int:
        if not 0 <= i < self.n_data_servers:
            raise ValueError(f"data server {i} out of range")
        return self.n_compute_nodes + i

    @property
    def metadata_node_id(self) -> int:
        return self.n_compute_nodes + self.n_data_servers
