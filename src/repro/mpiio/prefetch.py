"""Strategy 2: pre-execution prefetching with immediate issue.

Models the SC'08 approach the paper compares against (Chen et al.,
"Hiding I/O Latency with Pre-execution Prefetching"): a per-rank
speculative thread runs ahead of the program -- computation *stripped*
via program slicing -- and issues each predicted read to the data servers
the moment it is generated.  The goal is overlap, not service order, so
requests trickle into the servers' queues and the elevator sees little to
sort: exactly the behaviour Figs 1(c) and 1(b) document.

Prefetched data lands in the global cache; the normal process consumes it
from there, falling back to a direct synchronous read on a miss or a
mis-prediction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.cache.chunk import ChunkKey, chunk_range
from repro.cache.memcache import GlobalCache
from repro.mpi.ops import ComputeOp, IoOp
from repro.mpiio.engine import IndependentEngine
from repro.sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime

__all__ = ["PreexecPrefetchEngine"]

#: CPU cost for the speculative thread to generate one request.
SPECULATION_OP_CPU_S = 5e-6


class PreexecPrefetchEngine(IndependentEngine):
    """Strategy 2: a per-rank speculative thread runs ahead (computation
    sliced away) and issues each predicted read immediately."""

    name = "preexec-prefetch"

    def __init__(
        self,
        runtime: "MpiRuntime",
        job: "MpiJob",
        window_bytes: int = 1024 * 1024,
        retain_compute: bool = False,
        **kw,
    ):
        super().__init__(runtime, job, **kw)
        self.window_bytes = window_bytes
        #: Strategy 2 strips computation from the pre-execution ("we
        #: remove all the computation", paper SII); True emulates a
        #: slicing-free speculation that re-runs it.
        self.retain_compute = retain_compute
        self.cache: GlobalCache = runtime.global_cache
        #: chunks currently being prefetched: key -> completion event
        self._inflight: dict[ChunkKey, Event] = {}
        #: per-rank bytes currently speculated ahead (in flight + unconsumed)
        self._window_used: dict[int, int] = {}
        self._window_wakeup: dict[int, Event] = {}
        self.n_prefetches = 0
        self.n_prefetch_hits = 0

    # ------------------------------------------------------------------

    def on_job_start(self) -> None:
        for proc in self.job.procs:
            self.sim.process(
                self._speculator(proc), name=f"spec-{self.job.name}:{proc.rank}"
            )

    def _chunk_key(self, file_name: str, idx: int) -> ChunkKey:
        return ChunkKey(file_name, idx)

    def _speculator(self, proc: "MpiProcess"):
        """The per-rank speculative thread."""
        sim = self.sim
        cb = self.cache.chunk_bytes
        for op in proc.stream.peek():
            if proc.stream.lookahead_len > 100_000:
                # Runaway guard: nothing read-shaped for a very long
                # stretch (e.g. a write-only program) -- stop speculating.
                break
            if isinstance(op, ComputeOp):
                if self.retain_compute and op.seconds > 0:
                    yield sim.timeout(op.seconds)
                continue
            if not isinstance(op, IoOp) or op.op != "R":
                continue
            for seg in op.prediction:
                for idx in chunk_range(seg.offset, seg.length, cb):
                    key = self._chunk_key(op.file_name, idx)
                    if key in self._inflight or self.cache.contains(key):
                        continue
                    # Respect the speculation window (bounded run-ahead).
                    while self._window_used.get(proc.rank, 0) + cb > self.window_bytes:
                        ev = self.sim.event()
                        self._window_wakeup[proc.rank] = ev
                        yield ev
                    self._window_used[proc.rank] = (
                        self._window_used.get(proc.rank, 0) + cb
                    )
                    yield sim.timeout(SPECULATION_OP_CPU_S)
                    done = sim.event()
                    self._inflight[key] = done
                    self.n_prefetches += 1
                    sim.process(
                        self._fetch_chunk(proc, key, done),
                        name=f"pf-{self.job.name}:{proc.rank}",
                    )

    def _fetch_chunk(self, proc: "MpiProcess", key: ChunkKey, done: Event):
        """Issue one chunk read immediately (the defining Strategy-2 move)."""
        f = self.lookup_file(key.file_name)
        client = self.client_of(proc)
        cb = self.cache.chunk_bytes
        offset = key.index * cb
        length = min(cb, f.size - offset)
        if length > 0:
            yield from client.io(f, offset, length, "R", proc.stream_id)
            yield from self.cache.put(
                key, from_node=proc.node_id, job_id=self.job.job_id
            )
        self._inflight.pop(key, None)
        done.succeed()

    def _release_window(self, rank: int, nbytes: int) -> None:
        self._window_used[rank] = max(self._window_used.get(rank, 0) - nbytes, 0)
        ev = self._window_wakeup.pop(rank, None)
        if ev is not None and not ev.triggered:
            ev.succeed()

    # ------------------------------------------------------------------

    def do_io(self, proc: "MpiProcess", op: IoOp) -> Generator:
        if op.op != "R":
            yield from super().do_io(proc, op)
            return
        f = self.lookup_file(op.file_name)
        client = self.client_of(proc)
        cb = self.cache.chunk_bytes
        for seg in op.segments:
            for idx in chunk_range(seg.offset, seg.length, cb):
                key = self._chunk_key(op.file_name, idx)
                inflight = self._inflight.get(key)
                if inflight is not None:
                    yield inflight
                lo = max(seg.offset, idx * cb)
                hi = min(seg.end, (idx + 1) * cb)
                hit = yield from self.cache.get(key, proc.node_id, nbytes=hi - lo)
                if hit:
                    self.n_prefetch_hits += 1
                    self._release_window(proc.rank, cb)
                else:
                    # Mis-prediction or eviction: synchronous fallback.
                    yield from client.io(f, lo, hi - lo, "R", proc.stream_id)
