"""MPI-IO layer (the simulated ROMIO/ADIO stack).

Execution engines interpret a job's I/O operations:

- :class:`IndependentEngine` -- vanilla MPI-IO: each rank issues its
  synchronous requests one at a time (paper's baseline / Strategy 1).
- :class:`CollectiveEngine` -- ROMIO-style two-phase collective I/O with
  aggregators, data sieving within collective buffers, and exchange
  costs (the paper's main comparator).
- :class:`PreexecPrefetchEngine` -- Strategy 2: speculative pre-execution
  that issues prefetch requests immediately as they are generated, aiming
  to hide I/O behind computation (Chen et al. SC'08 style).
- DualPar itself lives in :mod:`repro.core.engine`, built on this layer.

Shared machinery: :mod:`repro.mpiio.datasieve` (coalescing with hole
bridging) and :mod:`repro.mpiio.listio` (batched per-server requests).
"""

from repro.mpiio.engine import IndependentEngine, IoEngine
from repro.mpiio.collective import CollectiveEngine
from repro.mpiio.prefetch import PreexecPrefetchEngine
from repro.mpiio.datasieve import coalesce_segments, coverage_stats
from repro.mpiio.listio import batch_io

__all__ = [
    "CollectiveEngine",
    "IndependentEngine",
    "IoEngine",
    "PreexecPrefetchEngine",
    "batch_io",
    "coalesce_segments",
    "coverage_stats",
]
