"""Two-phase collective I/O (ROMIO-style).

On a collective call every rank deposits its segment list and enters a
synchronisation point; aggregators (one per compute node, ROMIO's
default) then each own a contiguous *file domain*:

- **read**: aggregators read their domain's coalesced ranges (data
  sieving within the collective buffer), then redistribute to the
  requesting ranks over the network;
- **write**: ranks ship data to aggregators, which write coalesced
  ranges -- performing read-modify-write when hole bridging covers
  unrequested bytes.

The exchange phase costs real network transfers plus a metadata
all-to-all that grows with process count -- the scalability burden the
paper observes in Fig 4 ("the size of data domain accessed by one
collective I/O routine does not increase with more processes, making
collective I/O increasingly expensive because more data exchanges are
needed").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Generator

from repro.mpi.ops import IoOp, Segment
from repro.mpiio.datasieve import coalesce_segments
from repro.mpiio.engine import IndependentEngine
from repro.mpiio.listio import batch_io
from repro.sim import Event, all_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime

__all__ = ["CollectiveEngine"]

#: Per-process cost of the offset/length all-gather + alltoallv setup
#: preceding each call (ROMIO's ADIOI_Calc_* phase; ~3 ms at 64 ranks on
#: TCP-era clusters, growing linearly with the process count).
META_EXCHANGE_PER_PROC_S = 50e-6


@dataclass
class _CollCall:
    event: Event
    ops: dict[int, IoOp] = field(default_factory=dict)
    started: bool = False


def _clip(seg: Segment, lo: int, hi: int) -> Segment | None:
    s = max(seg.offset, lo)
    e = min(seg.end, hi)
    if e <= s:
        return None
    return Segment(s, e - s)


class CollectiveEngine(IndependentEngine):
    """ROMIO-style two-phase collective I/O with per-node aggregators,
    bounded collective buffers, and costed exchange."""

    name = "collective"

    def __init__(
        self,
        runtime: "MpiRuntime",
        job: "MpiJob",
        cb_buffer_bytes: int = 4 * 1024 * 1024,
        hole_threshold: int = 64 * 1024,
        n_aggregators: int | None = None,
        treat_all_collective: bool = True,
        **kw,
    ):
        super().__init__(runtime, job, **kw)
        self.cb_buffer_bytes = cb_buffer_bytes
        self.hole_threshold = hole_threshold
        self._n_aggregators = n_aggregators
        #: Running a benchmark "with collective I/O" means its I/O calls
        #: are the _all variants; with this flag (default) every op takes
        #: the two-phase path regardless of the workload's own marking.
        #: Requires all ranks to make the same sequence of I/O calls.
        self.treat_all_collective = treat_all_collective
        self._calls: dict[int, _CollCall] = {}
        self._rank_call_idx: dict[int, int] = {}
        self.n_collective_calls = 0
        self.exchange_bytes = 0

    # ------------------------------------------------------------------

    @property
    def n_aggregators(self) -> int:
        if self._n_aggregators is not None:
            return min(self._n_aggregators, self.job.nprocs)
        return min(self.runtime.cluster.spec.n_compute_nodes, self.job.nprocs)

    def _meta_cost_s(self) -> float:
        p = self.job.nprocs
        lat = self.runtime.cluster.spec.network.latency_s
        return 2 * math.ceil(math.log2(max(p, 2))) * lat + p * META_EXCHANGE_PER_PROC_S

    def do_io(self, proc: "MpiProcess", op: IoOp) -> Generator:
        if not op.collective and not self.treat_all_collective:
            yield from super().do_io(proc, op)
            return
        idx = self._rank_call_idx.get(proc.rank, 0)
        self._rank_call_idx[proc.rank] = idx + 1
        call = self._calls.setdefault(idx, _CollCall(event=self.sim.event()))
        call.ops[proc.rank] = op
        yield self.job.barrier.arrive()
        yield self.sim.timeout(self._meta_cost_s())
        if not call.started:
            call.started = True
            self.n_collective_calls += 1
            self.sim.process(self._aggregate(idx, call), name=f"coll-{self.job.name}-{idx}")
        yield call.event
        # The call returns once every aggregator has delivered; stale call
        # state is dropped to keep memory bounded.
        self._calls.pop(idx, None)

    # ------------------------------------------------------------------

    def _aggregate(self, idx: int, call: _CollCall):
        sim = self.sim
        ops = call.ops
        any_op = next(iter(ops.values()))
        f = self.lookup_file(any_op.file_name)
        io_kind = any_op.op
        lo = min(s.offset for o in ops.values() for s in o.segments)
        hi = max(s.end for o in ops.values() for s in o.segments)
        n_agg = self.n_aggregators
        unit = self.runtime.cluster.spec.stripe_unit
        fd_size = -(-((hi - lo) // n_agg + 1) // unit) * unit

        agg_procs = []
        for a in range(n_agg):
            d_lo = lo + a * fd_size
            d_hi = min(lo + (a + 1) * fd_size, hi)
            if d_lo >= d_hi:
                continue
            per_rank: dict[int, list[Segment]] = {}
            for rank, op in ops.items():
                clipped = [c for s in op.segments if (c := _clip(s, d_lo, d_hi))]
                if clipped:
                    per_rank[rank] = clipped
            if not per_rank:
                continue
            agg_rank = a  # aggregators are the lowest ranks, ROMIO default
            agg_proc = self.job.procs[agg_rank]
            agg_procs.append(
                sim.process(
                    self._run_aggregator(f, io_kind, agg_proc, per_rank),
                    name=f"agg{a}-{self.job.name}",
                )
            )
        if agg_procs:
            yield all_of(sim, agg_procs)
        else:  # pragma: no cover - degenerate empty call
            yield sim.timeout(0)
        call.event.succeed()

    def _run_aggregator(
        self,
        f,
        io_kind: str,
        agg_proc: "MpiProcess",
        per_rank: dict[int, list[Segment]],
    ):
        sim = self.sim
        net = self.runtime.cluster.network
        client = self.client_of(agg_proc)
        all_segs = [s for segs in per_rank.values() for s in segs]
        coalesced = coalesce_segments(all_segs, hole_threshold=self.hole_threshold)
        requested = sum(
            s.length for s in coalesce_segments(all_segs, hole_threshold=0)
        )
        covered = sum(s.length for s in coalesced)
        has_holes = covered > requested

        # Split the coalesced ranges into <= cb_buffer rounds.
        rounds: list[list[Segment]] = [[]]
        acc = 0
        for seg in coalesced:
            pos = seg.offset
            remaining = seg.length
            while remaining > 0:
                take = min(remaining, self.cb_buffer_bytes - acc)
                if take == 0:
                    rounds.append([])
                    acc = 0
                    continue
                rounds[-1].append(Segment(pos, take))
                pos += take
                remaining -= take
                acc += take
                if acc >= self.cb_buffer_bytes:
                    rounds.append([])
                    acc = 0
        rounds = [r for r in rounds if r]

        def exchange(direction: str, group: list[Segment]):
            """Move each rank's bytes within ``group`` between agg and rank."""
            g_lo = min(s.offset for s in group)
            g_hi = max(s.end for s in group)
            moves = []
            for rank, segs in per_rank.items():
                nbytes = sum(
                    c.length for s in segs if (c := _clip(s, g_lo, g_hi))
                )
                if nbytes == 0:
                    continue
                rank_node = self.job.procs[rank].node_id
                if direction == "to_ranks":
                    src, dst = agg_proc.node_id, rank_node
                else:
                    src, dst = rank_node, agg_proc.node_id
                self.exchange_bytes += nbytes
                moves.append(
                    sim.process(net.transfer(src, dst, nbytes), name="coll-xchg")
                )
            if moves:
                yield all_of(sim, moves)

        for group in rounds:
            if io_kind == "R":
                yield from batch_io(client, f, group, "R", agg_proc.stream_id)
                yield from exchange("to_ranks", group)
            else:
                yield from exchange("to_agg", group)
                if has_holes:
                    # Read-modify-write: fetch covering extents first.
                    yield from batch_io(client, f, group, "R", agg_proc.stream_id)
                yield from batch_io(client, f, group, "W", agg_proc.stream_id)
