"""List I/O: batched multi-range requests, one message per data server.

"We use list I/O to pack small requests and issue them in ascending order
of the requested data's offsets in the files to improve disk efficiency"
(paper SIV-D).  Semantically: the caller provides sorted segments; each
data server receives a single request message naming every piece it owns
and submits them to its block layer together.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.mpi.ops import Segment
from repro.pfs.client import CONTROL_MSG_BYTES, PfsClient
from repro.pfs.dataserver import ServerRequest
from repro.pfs.filesystem import PfsFile
from repro.sim import all_of

__all__ = ["batch_io", "PER_PIECE_HEADER_BYTES"]

#: Wire bytes describing one (offset, length) piece in a list request.
PER_PIECE_HEADER_BYTES = 16


def batch_io(
    client: PfsClient,
    f: PfsFile,
    segments: list[Segment],
    op: str,
    stream_id: int,
) -> Generator:
    """Issue ``segments`` of file ``f`` as list-I/O; yield until done.

    Pieces are grouped per data server, object-contiguous runs coalesced,
    and each server receives one message.  All servers proceed in
    parallel; for reads the payloads stream back afterwards.
    """
    if op not in ("R", "W"):
        raise ValueError(f"op must be 'R' or 'W', got {op!r}")
    if not segments:
        return
    sim = client.sim
    layout = client.layout
    by_server: dict[int, list] = {}
    total_by_server: dict[int, int] = {}
    for seg in segments:
        if seg.offset < 0 or seg.end > f.size:
            raise ValueError(f"segment {seg} outside file {f.name} of {f.size} bytes")
        for piece in layout.split_coalesced(seg.offset, seg.length):
            runs = by_server.setdefault(piece.server, [])
            # Coalesce per-server object-contiguous runs across segments.
            if runs and runs[-1].object_offset + runs[-1].length == piece.object_offset:
                prev = runs[-1]
                runs[-1] = ServerRequest(
                    file_name=f.name,
                    object_offset=prev.object_offset,
                    length=prev.length + piece.length,
                    op=op,
                    stream_id=stream_id,
                )
            else:
                runs.append(
                    ServerRequest(
                        file_name=f.name,
                        object_offset=piece.object_offset,
                        length=piece.length,
                        op=op,
                        stream_id=stream_id,
                    )
                )
            total_by_server[piece.server] = total_by_server.get(piece.server, 0) + piece.length

    faults = client.faults
    if faults is not None and op == "W":
        # Ids are stamped once, before any attempt: a timed-out batch is
        # re-sent with the same ids so the server commits each run once.
        for s in sorted(by_server):
            for req in by_server[s]:
                req.req_id = faults.next_request_id()

    def per_server(server_idx: int, reqs: list[ServerRequest]):
        server = client.servers[server_idx]
        nbytes = total_by_server[server_idx]
        header = CONTROL_MSG_BYTES + PER_PIECE_HEADER_BYTES * len(reqs)
        if op == "W":
            yield from client.network.transfer(
                client.node_id, server.node_id, header + nbytes
            )
        else:
            yield from client.network.transfer(client.node_id, server.node_id, header)
        yield server.handle_list(reqs)
        if op == "R":
            yield from client.network.transfer(
                server.node_id, client.node_id, CONTROL_MSG_BYTES + nbytes
            )
        else:
            yield from client.network.transfer(
                server.node_id, client.node_id, CONTROL_MSG_BYTES
            )

    if faults is None:
        procs = [
            sim.process(per_server(s, reqs), name=f"listio-s{s}")
            for s, reqs in sorted(by_server.items())
        ]
    else:
        procs = [
            sim.process(
                client.robust_call(
                    lambda s=s, reqs=reqs: per_server(s, reqs),
                    s,
                    nbytes=total_by_server[s],
                ),
                name=f"listio-s{s}",
            )
            for s, reqs in sorted(by_server.items())
        ]
    yield all_of(sim, procs)
    total = sum(total_by_server.values())
    if op == "R":
        client.bytes_read += total
    else:
        client.bytes_written += total
