"""Engine base class and vanilla independent MPI-IO.

The engine is the ADIO dispatch point: every ``IoOp`` a rank executes
passes through ``do_io``.  This is exactly where the paper instruments
MPICH2 (ADIOI_PVFS2_ReadContig / ReadStrided / ...), and where DualPar's
engine later intercepts calls.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.mpi.ops import IoOp, Segment
from repro.mpiio.datasieve import coalesce_segments
from repro.pfs.filesystem import PfsFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.runtime import MpiJob, MpiProcess, MpiRuntime

__all__ = ["IoEngine", "IndependentEngine"]


class IoEngine:
    """Per-job I/O execution strategy."""

    name = "base"

    def __init__(self, runtime: "MpiRuntime", job: "MpiJob"):
        self.runtime = runtime
        self.job = job
        self.sim = runtime.sim

    # -- lifecycle hooks -------------------------------------------------

    def on_job_start(self) -> None:
        """Called once when the job's ranks are created."""

    def finalize_rank(self, proc: "MpiProcess") -> Generator:
        """Yielded from as each rank's stream drains (e.g. final flush)."""
        return
        yield  # pragma: no cover - makes this a generator

    def on_job_end(self) -> None:
        """Called once when every rank has finished."""

    # -- I/O dispatch ------------------------------------------------------

    def do_io(self, proc: "MpiProcess", op: IoOp) -> Generator:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def lookup_file(self, name: str) -> PfsFile:
        # simown: shared[namespace read; layout immutable after create]
        return self.runtime.cluster.fs.lookup(name)

    def client_of(self, proc: "MpiProcess"):
        return self.runtime.cluster.clients[proc.node_id]


class IndependentEngine(IoEngine):
    """Vanilla MPI-IO: synchronous requests issued one at a time.

    "Without system-level prefetching ... a process issues its synchronous
    read requests one at a time and there is no overlap between
    computation and data access" -- Strategy 1, the evaluation baseline.

    ``data_sieving_reads`` optionally enables ROMIO's independent-path
    read sieving (one covering read per strided call when holes are small
    and the extent fits the sieve buffer).  Off by default to match the
    paper's vanilla baseline behaviour on PVFS2.
    """

    name = "vanilla"

    def __init__(
        self,
        runtime: "MpiRuntime",
        job: "MpiJob",
        data_sieving_reads: bool = False,
        sieve_buffer_bytes: int = 4 * 1024 * 1024,
    ):
        super().__init__(runtime, job)
        self.data_sieving_reads = data_sieving_reads
        self.sieve_buffer_bytes = sieve_buffer_bytes

    def do_io(self, proc: "MpiProcess", op: IoOp) -> Generator:
        f = self.lookup_file(op.file_name)
        client = self.client_of(proc)
        segments = op.segments
        if op.op == "R" and self.data_sieving_reads and len(segments) > 1:
            lo = min(s.offset for s in segments)
            hi = max(s.end for s in segments)
            if hi - lo <= self.sieve_buffer_bytes:
                # One covering read; holes discarded in memory.
                yield from client.io(f, lo, hi - lo, "R", proc.stream_id)
                return
        for seg in coalesce_segments(segments, hole_threshold=0):
            yield from client.io(f, seg.offset, seg.length, op.op, proc.stream_id)
