"""Data sieving: coalescing segment lists with bounded hole bridging.

ROMIO's data sieving reads one covering extent instead of many small
pieces, discarding the unrequested "holes"; DualPar's CRM applies the
same idea when merging the requests a pre-execution recorded ("if there
are small numbers of holes between the requests ... for reads the data
in the holes are added to the requests").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.ops import Segment

__all__ = ["coalesce_segments", "coverage_stats", "CoverageStats"]


def coalesce_segments(
    segments: list[Segment] | tuple[Segment, ...],
    hole_threshold: int = 0,
    max_extent: int | None = None,
) -> list[Segment]:
    """Sort, merge overlapping/adjacent segments, and bridge small holes.

    Holes of at most ``hole_threshold`` bytes between consecutive segments
    are absorbed into the covering segment.  ``max_extent`` caps the size
    of any produced segment (a coalesced run is split, never a hole
    re-opened).
    """
    if hole_threshold < 0:
        raise ValueError("hole_threshold must be non-negative")
    if not segments:
        return []
    ordered = sorted(segments, key=lambda s: (s.offset, s.length))
    out: list[Segment] = []
    cur_start, cur_end = ordered[0].offset, ordered[0].end
    for seg in ordered[1:]:
        if seg.offset <= cur_end + hole_threshold:
            cur_end = max(cur_end, seg.end)
        else:
            out.append(Segment(cur_start, cur_end - cur_start))
            cur_start, cur_end = seg.offset, seg.end
    out.append(Segment(cur_start, cur_end - cur_start))
    if max_extent is not None:
        if max_extent <= 0:
            raise ValueError("max_extent must be positive")
        split: list[Segment] = []
        for seg in out:
            pos = seg.offset
            remaining = seg.length
            while remaining > 0:
                take = min(max_extent, remaining)
                split.append(Segment(pos, take))
                pos += take
                remaining -= take
        out = split
    return out


@dataclass(frozen=True)
class CoverageStats:
    """How much extra data hole-bridging pulls in."""

    requested_bytes: int
    covered_bytes: int
    n_input_segments: int
    n_output_segments: int

    @property
    def waste_ratio(self) -> float:
        if self.covered_bytes == 0:
            return 0.0
        return 1.0 - self.requested_bytes / self.covered_bytes


def coverage_stats(
    segments: list[Segment] | tuple[Segment, ...], coalesced: list[Segment]
) -> CoverageStats:
    """Compare requested vs covered bytes for a coalesced segment list."""
    # Requested bytes must de-duplicate overlaps to compare fairly.
    dedup = coalesce_segments(segments, hole_threshold=0)
    return CoverageStats(
        requested_bytes=sum(s.length for s in dedup),
        covered_bytes=sum(s.length for s in coalesced),
        n_input_segments=len(segments),
        n_output_segments=len(coalesced),
    )
