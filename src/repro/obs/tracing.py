"""Span tracing: follow one I/O request across simulation layers.

A *span* is a named interval of simulated time on a *track* (one row in
the trace viewer: a rank, a PFS server, a disk).  Spans are recorded with
lightweight context managers::

    with tracer.span("mpi.io", track="rank3", trace=tid, op="R"):
        yield from engine.do_io(proc, op)

Because simulation processes interleave, nothing thread-local can carry
the request identity between layers; instead a *trace-context id* is
propagated explicitly -- stamped on the MPI-IO call, carried by the PFS
request message, and attached to the block requests it becomes -- so the
MPI rank -> MPI-IO engine -> PFS client -> data server -> I/O scheduler
-> disk chain of one logical operation shares one id.

Two span flavours map onto the Chrome ``trace_event`` format:

- synchronous (default): properly nested within their track, exported as
  ``"X"`` complete events (a rank's MPI-IO calls, a disk's strictly
  serial services);
- ``async_=True``: may overlap on their track, exported as ``"b"``/``"e"``
  async event pairs keyed by span id (a server handling many concurrent
  requests).

The tracer reads the clock of the simulator it is bound to and never
schedules anything: tracing cannot perturb a run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["NULL_SPAN", "NULL_TRACER", "NullSpan", "NullTracer", "Span", "SpanRecord", "Tracer"]


class SpanRecord:
    """One recorded span.  ``t1`` stays None if the owning process never
    exited the span (e.g. the schedule drained first)."""

    __slots__ = ("name", "cat", "track", "trace_id", "span_id", "t0", "t1", "args", "async_")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        trace_id: int,
        span_id: int,
        t0: float,
        args: Optional[dict],
        async_: bool,
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.trace_id = trace_id
        self.span_id = span_id
        self.t0 = t0
        self.t1: Optional[float] = None
        self.args = args
        self.async_ = async_

    @property
    def duration_s(self) -> float:
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.name} [{self.t0}..{self.t1}] track={self.track}>"


class Span:
    """Context manager stamping begin/end sim times onto a SpanRecord."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> SpanRecord:
        return self.record

    def __exit__(self, *exc: Any) -> None:
        self.record.t1 = self._tracer.now

    @property
    def trace_id(self) -> int:
        return self.record.trace_id


class Tracer:
    """Records spans and instants against one simulator's clock."""

    enabled = True

    def __init__(self) -> None:
        self._sim: Optional["Simulator"] = None
        self.spans: list[SpanRecord] = []
        #: Instant (point) events: (name, cat, track, trace_id, t, args).
        self.instants: list[tuple[str, str, str, int, float, Optional[dict]]] = []
        self._next_trace = 0
        self._next_span = 0
        #: stream_id -> trace-context id of the MPI-IO call currently
        #: executing on that stream (explicit cross-layer propagation).
        self._stream_ctx: dict[int, int] = {}

    def bind(self, sim: "Simulator") -> None:
        self._sim = sim

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # -- trace-context propagation -------------------------------------

    def new_trace(self) -> int:
        self._next_trace += 1
        return self._next_trace

    def bind_stream(self, stream_id: int, trace_id: int) -> None:
        """Associate a client stream with the trace context it serves."""
        self._stream_ctx[stream_id] = trace_id

    def trace_of_stream(self, stream_id: int) -> int:
        """The trace context bound to a stream (0 = untraced background)."""
        return self._stream_ctx.get(stream_id, 0)

    # -- recording ------------------------------------------------------

    def span(
        self,
        name: str,
        track: str = "main",
        cat: str = "sim",
        trace: int = 0,
        async_: bool = False,
        **args: Any,
    ) -> Span:
        self._next_span += 1
        rec = SpanRecord(
            name=name,
            cat=cat,
            track=track,
            trace_id=trace,
            span_id=self._next_span,
            t0=self.now,
            args=args or None,
            async_=async_,
        )
        self.spans.append(rec)
        return Span(self, rec)

    def instant(
        self,
        name: str,
        track: str = "main",
        cat: str = "sim",
        trace: int = 0,
        **args: Any,
    ) -> None:
        self.instants.append((name, cat, track, trace, self.now, args or None))

    def __len__(self) -> int:
        return len(self.spans)


class NullSpan:
    """Reentrant no-op context manager; one shared instance."""

    __slots__ = ()

    record = None
    trace_id = 0

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        pass


NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer stand-in when observability is off."""

    enabled = False
    spans: tuple = ()
    instants: tuple = ()
    now = 0.0

    def bind(self, sim: "Simulator") -> None:
        pass

    def new_trace(self) -> int:
        return 0

    def bind_stream(self, stream_id: int, trace_id: int) -> None:
        pass

    def trace_of_stream(self, stream_id: int) -> int:
        return 0

    def span(self, name: str, **kw: Any) -> NullSpan:
        return NULL_SPAN

    def instant(self, name: str, **kw: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
