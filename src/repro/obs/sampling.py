"""The one periodic sampling loop every windowed recorder shares.

Before the observability layer, each recorder that wanted per-interval
samples (the throughput timeline in the experiment harness, the locality
daemon on every data server) carried its own copy of the same daemon
loop: sleep an interval, compute a delta, append a sample.  This class is
that loop, written once; recorders supply only the probe.

The sampler is a plain simulation daemon: it exists in observed *and*
plain runs alike (the timeline and SeekDist series are simulation
features, not observability features), so attaching an observability
layer never adds or removes a process from the schedule -- the
bit-identical-runs guarantee rests on that.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = ["PeriodicSampler"]


class PeriodicSampler:
    """Calls ``probe(sim_now)`` every ``interval_s`` of simulated time.

    The probe does its own recording (into a recorder's sample list, a
    registry timeseries, or both); the sampler owns only the cadence.
    Runs as a daemon process so the sanitizer's leak check skips it.
    """

    def __init__(
        self,
        sim: "Simulator",
        interval_s: float,
        probe: Callable[[float], None],
        name: str = "sampler",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("sampling interval must be positive")
        self.sim = sim
        self.interval_s = interval_s
        self.probe = probe
        self.name = name
        self._proc = sim.process(self._run(), name=name, daemon=True)

    def _run(self):  # type: ignore[no-untyped-def]
        sim = self.sim
        interval = self.interval_s
        probe = self.probe
        while True:
            yield sim.timeout(interval)
            probe(sim.now)
