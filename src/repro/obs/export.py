"""Exporters: metrics JSON, Darshan-style per-rank summary, Chrome trace.

Three consumption paths for one observed run:

- :func:`write_metrics` -- the registry snapshot as a JSON document CI
  can diff and gate on;
- :func:`darshan_summary` -- an always-on-style per-rank I/O
  characterization table (counters per rank, in the spirit of Darshan's
  job summary);
- :func:`chrome_trace_events` / :func:`write_chrome_trace` -- the span
  log as Chrome ``trace_event`` JSON, loadable in ``chrome://tracing``
  and https://ui.perfetto.dev for visual inspection of a whole
  experiment.

Timestamps are simulated seconds converted to trace microseconds;
nothing here reads a wall clock.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Optional, Union

from repro.obs.tracing import SpanRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.runner.experiment import ExperimentResult

__all__ = [
    "chrome_trace_events",
    "darshan_summary",
    "merge_metric_snapshots",
    "write_chrome_trace",
    "write_metrics",
]


# -- metrics ------------------------------------------------------------


def write_metrics(path: Union[str, Path], snapshot: dict) -> Path:
    """Write one registry snapshot (or a merged snapshot) as JSON."""
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return path


def merge_metric_snapshots(snapshots: dict[str, dict]) -> dict:
    """Combine per-cell snapshots (label -> snapshot) into one document.

    Counters are additionally summed across cells under ``"merged"`` --
    the cross-cell totals a sweep-level gate wants -- while the full
    per-cell snapshots are preserved under ``"cells"`` (gauges,
    histograms, and timeseries of independent simulations are not
    meaningfully addable).
    """
    merged_counters: dict[str, float] = {}
    for label in sorted(snapshots):
        snap = snapshots[label]
        for name, value in sorted(snap.get("counters", {}).items()):
            merged_counters[name] = merged_counters.get(name, 0) + value
    return {
        "cells": {label: snapshots[label] for label in sorted(snapshots)},
        "merged": {"counters": merged_counters},
    }


# -- Darshan-style per-rank summary ------------------------------------


def darshan_summary(result: "ExperimentResult") -> str:
    """Per-rank I/O characterization table for one experiment.

    One row per MPI rank with the cumulative ADIO counters the paper's
    instrumentation keeps -- the same shape as a Darshan job summary's
    per-rank section.
    """
    from repro.runner.results import format_table

    rows: list[list] = []
    for job in result.mpi_jobs:
        for proc in job.procs:
            m = proc.metrics
            rows.append(
                [
                    job.name,
                    proc.rank,
                    proc.node_id,
                    m.n_io_calls,
                    m.bytes_read,
                    m.bytes_written,
                    m.io_time_s,
                    m.compute_time_s,
                    f"{m.io_ratio:.0%}",
                ]
            )
    return format_table(
        [
            "job",
            "rank",
            "node",
            "io calls",
            "bytes read",
            "bytes written",
            "io (s)",
            "compute (s)",
            "io ratio",
        ],
        rows,
        title="per-rank I/O summary",
        float_fmt="{:.3f}",
    )


# -- Chrome trace_event JSON -------------------------------------------


def _track_ids(spans: Iterable[SpanRecord]) -> dict[str, int]:
    """Stable track -> tid assignment in first-recorded order."""
    tids: dict[str, int] = {}
    for rec in spans:
        if rec.track not in tids:
            tids[rec.track] = len(tids) + 1
    return tids


def chrome_trace_events(
    tracer: Tracer,
    pid: int = 1,
    process_name: str = "repro-sim",
    registry_snapshot: Optional[dict] = None,
) -> list[dict]:
    """Convert recorded spans to Chrome ``trace_event`` dicts.

    Synchronous spans become ``"X"`` complete events; async spans become
    ``"b"``/``"e"`` pairs keyed by span id so overlapping operations on
    one track render correctly.  When a ``registry_snapshot`` is given,
    its timeseries are emitted as ``"C"`` counter events so queue depths
    and throughput ride along in the same timeline.
    """
    spans = list(tracer.spans)
    tids = _track_ids(spans)
    events: list[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
    for rec in spans:
        tid = tids[rec.track]
        t1 = rec.t1 if rec.t1 is not None else rec.t0
        args: dict[str, Any] = dict(rec.args) if rec.args else {}
        if rec.trace_id:
            args["trace"] = rec.trace_id
        base = {
            "pid": pid,
            "tid": tid,
            "name": rec.name,
            "cat": rec.cat,
        }
        if args:
            base["args"] = args
        if rec.async_:
            ident = f"0x{rec.span_id:x}"
            events.append({**base, "ph": "b", "id": ident, "ts": rec.t0 * 1e6})
            events.append({**base, "ph": "e", "id": ident, "ts": t1 * 1e6})
        else:
            events.append(
                {**base, "ph": "X", "ts": rec.t0 * 1e6, "dur": (t1 - rec.t0) * 1e6}
            )
    for name, cat, track, trace, t, args in tracer.instants:
        tid = tids.get(track, 0)
        ev: dict[str, Any] = {
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "name": name,
            "cat": cat,
            "ts": t * 1e6,
        }
        merged = dict(args) if args else {}
        if trace:
            merged["trace"] = trace
        if merged:
            ev["args"] = merged
        events.append(ev)
    if registry_snapshot:
        for name in sorted(registry_snapshot.get("timeseries", {})):
            for t, v in registry_snapshot["timeseries"][name]:
                events.append(
                    {
                        "ph": "C",
                        "pid": pid,
                        "name": name,
                        "ts": t * 1e6,
                        "args": {"value": v},
                    }
                )
    return events


def write_chrome_trace(path: Union[str, Path], events: list[dict]) -> Path:
    """Write trace events as a Perfetto/chrome://tracing-loadable file."""
    path = Path(path)
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(doc) + "\n")
    return path
