"""Metric instruments and the registry components publish into.

Four instrument kinds cover every counter the simulation keeps today:

- :class:`Counter` -- monotonically increasing totals (bytes served,
  cache hits, prefetch cycles);
- :class:`Gauge` -- last-written values (resident cache bytes);
- :class:`Histogram` -- fixed-bucket distributions (seek distance,
  elevator queue depth at dispatch);
- :class:`TimeSeries` -- ``(sim_time, value)`` samples (EMC improvement
  estimate, windowed throughput);
- :class:`EventLog` -- append-only record streams (blktrace accesses).

All timestamps are *simulated* seconds: nothing here reads a wall clock,
so an observed run is a pure function of its inputs exactly like a plain
run.  Components never branch on observability being enabled -- they are
handed either real instruments or the shared no-op singletons from
:data:`NULL_REGISTRY`, whose mutating methods do nothing.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

__all__ = [
    "DEFAULT_BOUNDS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "NullInstrument",
    "NullRegistry",
    "TimeSeries",
]

#: Default histogram bucket boundaries: powers of two up to 1 Mi.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(float(2**i) for i in range(21))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        self.value += n

    def to_dict(self) -> Any:
        return self.value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def set(self, v: float) -> None:
        self.value = v

    def to_dict(self) -> Any:
        return self.value


class Histogram:
    """A fixed-bucket distribution.

    ``bounds`` are the inclusive upper edges of the buckets; one overflow
    bucket catches everything beyond the last edge.  Bucket layout is
    fixed at construction so observation is O(log buckets) and snapshots
    are schema-stable across runs.
    """

    __slots__ = ("name", "bounds", "counts", "n", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.n = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, v: float) -> None:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if v <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        self.counts[lo] += 1
        self.n += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> Any:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "n": self.n,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class TimeSeries:
    """``(sim_time, value)`` samples, appended in simulation order."""

    __slots__ = ("name", "samples")

    kind = "timeseries"

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []

    def record(self, t: float, v: float) -> None:
        self.samples.append((t, v))

    def __len__(self) -> int:
        return len(self.samples)

    def to_dict(self) -> Any:
        return [[t, v] for t, v in self.samples]


class EventLog:
    """Append-only stream of structured records (e.g. blktrace accesses).

    Rows are arbitrary objects; snapshots report the count only (a full
    dump would dwarf every other metric), and consumers that need the
    records themselves -- plots, seek-distance analysis -- read ``rows``
    directly.
    """

    __slots__ = ("name", "fields", "rows")

    kind = "event_log"

    def __init__(self, name: str, fields: Sequence[str] = ()) -> None:
        self.name = name
        self.fields = tuple(fields)
        self.rows: list[Any] = []

    def append(self, row: Any) -> None:
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dict(self) -> Any:
        return {"fields": list(self.fields), "n": len(self.rows)}


_Instrument = Any  # Counter | Gauge | Histogram | TimeSeries | EventLog


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Names are dotted paths (``disk.disk0.seek_s``); asking twice for the
    same name returns the same instrument, and asking for an existing
    name with a different kind is an error (two components silently
    sharing a metric is always a bug).
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    # -- factories ------------------------------------------------------

    def _get_or_create(self, name: str, kind: str, factory: Any) -> _Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
            return inst
        if inst.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}, wanted {kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, "counter", lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, "gauge", lambda: Gauge(name))

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS
    ) -> Histogram:
        return self._get_or_create(name, "histogram", lambda: Histogram(name, bounds))

    def timeseries(self, name: str) -> TimeSeries:
        return self._get_or_create(name, "timeseries", lambda: TimeSeries(name))

    def event_log(self, name: str, fields: Sequence[str] = ()) -> EventLog:
        return self._get_or_create(name, "event_log", lambda: EventLog(name, fields))

    def attach(self, name: str, instrument: _Instrument) -> None:
        """Register an externally constructed instrument under ``name``."""
        existing = self._instruments.get(name)
        if existing is not None and existing is not instrument:
            raise ValueError(f"metric {name!r} already registered")
        self._instruments[name] = instrument

    # -- queries --------------------------------------------------------

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self, now: float) -> dict:
        """A JSON-ready view of every instrument, stamped with *sim* time.

        Instruments are grouped by kind and sorted by name, so two
        identical runs produce byte-identical snapshots.
        """
        out: dict[str, Any] = {
            "sim_time_s": now,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "timeseries": {},
            "event_logs": {},
        }
        section = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "timeseries": "timeseries",
            "event_log": "event_logs",
        }
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[section[inst.kind]][name] = inst.to_dict()
        return out


class NullInstrument:
    """The do-nothing instrument: every mutator is a no-op.

    One shared instance stands in for every kind, so a disabled run
    allocates nothing per metric and the only residual cost at a
    recording site is a bound-method call (sites on genuinely hot paths
    skip even that by holding ``None`` instead -- see the component
    wiring).
    """

    __slots__ = ()

    kind = "null"
    name = "null"
    rows: tuple = ()
    samples: tuple = ()

    def inc(self, n: float = 1) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def record(self, t: float, v: float) -> None:
        pass

    def append(self, row: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def to_dict(self) -> Any:
        return None


NULL_INSTRUMENT = NullInstrument()


class NullRegistry:
    """Registry stand-in when observability is off: hands out the shared
    :data:`NULL_INSTRUMENT` and snapshots to an empty dict."""

    enabled = False

    def counter(self, name: str) -> Any:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> Any:
        return NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS) -> Any:
        return NULL_INSTRUMENT

    def timeseries(self, name: str) -> Any:
        return NULL_INSTRUMENT

    def event_log(self, name: str, fields: Sequence[str] = ()) -> Any:
        return NULL_INSTRUMENT

    def attach(self, name: str, instrument: Any) -> None:
        pass

    def get(self, name: str) -> Optional[Any]:
        return None

    def names(self) -> list[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self, now: float) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
