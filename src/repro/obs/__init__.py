"""Unified observability: metrics, span tracing, and trace export.

The simulation-native measurement substrate (think Darshan for the
simulated cluster): components publish counters, gauges, histograms, and
time series into one :class:`MetricsRegistry`, and request flows are
recorded as spans by one :class:`Tracer` -- all stamped with *simulated*
time, never wall time.

Usage::

    from repro.obs import Observability

    obs = Observability()
    result = run_experiment(specs, observe=obs)
    snap = obs.snapshot(result.sim_now)
    write_metrics("metrics.json", snap)
    write_chrome_trace("trace.json", chrome_trace_events(obs.tracer))

Off by default and zero-overhead when disabled: a plain
``Simulator()`` carries the shared :data:`NULL_OBS` whose registry and
tracer are no-ops, and components that instrument hot paths hold
``None`` instead of instruments when observability is off.  Observing a
run never schedules events, reads wall clocks, or consumes randomness,
so an observed run is bit-identical to a plain one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.export import (
    chrome_trace_events,
    darshan_summary,
    merge_metric_snapshots,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.registry import (
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    EventLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimeSeries,
)
from repro.obs.sampling import PeriodicSampler
from repro.obs.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Simulator

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullObservability",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "PeriodicSampler",
    "Span",
    "SpanRecord",
    "TimeSeries",
    "Tracer",
    "chrome_trace_events",
    "darshan_summary",
    "merge_metric_snapshots",
    "write_chrome_trace",
    "write_metrics",
]


class Observability:
    """One registry plus one tracer, bound to one simulator.

    Pass an instance as ``Simulator(observe=...)`` -- or, higher up,
    ``run_experiment(..., observe=...)`` / ``build_cluster(spec,
    observe=...)`` -- and every component of that simulation registers
    its instruments here.
    """

    enabled = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    def bind(self, sim: "Simulator") -> None:
        """Attach the tracer to ``sim``'s clock (called by Simulator)."""
        self.tracer.bind(sim)

    def snapshot(self, now: float) -> dict:
        """The registry snapshot stamped with simulated time ``now``."""
        return self.registry.snapshot(now)


class NullObservability:
    """The disabled observability layer: shared no-op registry/tracer."""

    enabled = False

    def __init__(self) -> None:
        self.registry = NULL_REGISTRY
        self.tracer = NULL_TRACER

    def bind(self, sim: "Simulator") -> None:
        pass

    def snapshot(self, now: float) -> dict:
        return {}


#: The process-wide disabled-observability singleton every plain
#: Simulator shares.
NULL_OBS = NullObservability()
