"""Developer tooling: static analysis and runtime sanitizers.

This package holds correctness tooling that is part of the build rather
than an afterthought:

- :mod:`repro.devtools.simlint` -- an AST-based lint pass (stdlib ``ast``
  only) with rules targeted at discrete-event-simulation hazards:
  nondeterministic iteration order, wall-clock reads, global RNG state,
  mutable default arguments, and non-event ``yield``s inside simulation
  processes.  Run it with ``repro lint`` or ``python -m
  repro.devtools.simlint``.
- :mod:`repro.devtools.sanitizer` -- :class:`SimSanitizer`, an opt-in
  runtime checker (``REPRO_SANITIZE=1`` or ``Simulator(sanitize=True)``)
  that asserts event-time monotonicity, detects double-dispatched events,
  tracks process lifecycle, and attributes leaked or double-released
  resources to their owning process.

See ``docs/static_analysis.md`` for the rule catalogue and usage.
"""

from repro.devtools.sanitizer import SanitizerError, SimSanitizer
from repro.devtools.simlint import Finding, RULES, lint_paths, lint_source

__all__ = [
    "Finding",
    "RULES",
    "SanitizerError",
    "SimSanitizer",
    "lint_paths",
    "lint_source",
]
