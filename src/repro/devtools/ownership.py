"""simown -- state-ownership & cross-process sharing analyzer.

ROADMAP item 2 (conservative parallel DES) needs to know, for every
component in the simulated cluster, *which logical process owns its
mutable state* and which state is silently shared across the would-be
partition boundary.  This module answers that question statically: an
AST whole-tree pass over ``src/repro`` that

1. collects every class and its mutable attributes (``self.x = ...``
   in methods, class-level assignments, dataclass fields), plus the
   type wiring between components (constructor parameter annotations,
   direct construction, ``list[X]``/``dict[K, V]``/``Optional[X]``
   element types, local aliases like ``server = self.servers[i]``);
2. resolves attribute-chain accesses (``self.x.y``) in every function
   back to the owning class and records whether each is a read or a
   write, and whether the enclosing function crosses a network/MPI
   message boundary (a ``*.transfer(...)`` / metadata-RPC call);
3. assigns every module to an **LP domain** and classifies every
   mutable attribute of an LP-owned component as

   - ``lp-private``   -- only touched from its own domain,
   - ``message-mediated`` -- cross-domain touches all occur in
     functions that cross a net/MPI send boundary (the access is
     ordered by a message event, so a conservative partitioner can
     replay it),
   - ``shared-hazard`` -- touched cross-domain with *no* message in
     sight: real shared state the partitioner must replicate, move, or
     route through messages.

Cross-domain *method calls* are tracked the same way: an unmediated
call from one LP domain into another (``emc.set_mode(engine)`` style
control edges) is a hazard finding at the call site even when the
mutated attribute itself is only ever written via ``self``.

LP domains (see ``DOMAIN_OF_MODULE``):

- ``server`` -- one LP per data server: the server itself, its
  write-back buffer, page cache, block layer + elevator, disk stack,
  and blktrace hook.
- ``client`` -- compute-node side: PFS client, MPI runtime, MPI-IO
  engines, workloads, and the per-job DualPar machinery (engine, PEC,
  CRM) that runs on ranks.
- ``meta``   -- the metadata server node: MDS, namespace/filesystem,
  and the EMC daemon + system registry the paper hosts there.

Non-LP domains: ``kernel`` (the event core -- shared by construction),
``fabric`` (network + cooperative cache ring -- the message mediators
themselves), and ``harness`` (obs/guard/faults/runner/cluster/devtools
-- control plane that pauses the world; never partitioned).  Their
attributes are reported but are not hazards.

Value classes that ride *inside* messages (requests, layouts, chunk
descriptors) are payload: both ends of a transfer legitimately touch
them, ordered by the message itself.  See ``PAYLOAD_MODULES`` /
``PAYLOAD_CLASSES``.

Suppressing a finding: append ``# simown: shared[reason]`` to the
flagged line -- either the attribute definition line (blesses every
cross-domain access to that attribute) or an individual access/call
site.  The reason is carried into the partition map so item 2's
partitioner sees an explicit TODO list of state it must handle.

CLI: ``repro ownership [--format text|json] [--out MAP.json]
[--check]``.  ``--check`` exits 1 on any *unannotated* shared-hazard
finding (the CI gate).  The JSON partition map is the stable artifact
(no line numbers) consumed by the golden test and, eventually, the
partitioner.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "DOMAIN_OF_MODULE",
    "LP_DOMAINS",
    "PAYLOAD_CLASSES",
    "PAYLOAD_MODULES",
    "Access",
    "AttrInfo",
    "CallEdge",
    "ClassInfo",
    "Finding",
    "OwnershipGraph",
    "OwnershipReport",
    "analyze_paths",
    "classify",
    "main",
    "partition_map",
    "render_json",
    "render_text",
]

# ---------------------------------------------------------------------------
# Domain configuration
# ---------------------------------------------------------------------------

#: The would-be logical processes of ROADMAP item 2.
LP_DOMAINS = ("server", "client", "meta")

#: Longest-dotted-prefix match on the module path relative to ``repro``.
#: Anything unmatched defaults to ``harness``.
DOMAIN_OF_MODULE: dict[str, str] = {
    # kernel: the event core itself; shared by construction.
    "sim": "kernel",
    # fabric: the message mediators (every LP talks through these).
    "net": "fabric",
    "cache": "fabric",
    # server LP: one per data server.
    "pfs.dataserver": "server",
    "pfs.writeback": "server",
    "pfs.pagecache": "server",
    "disk": "server",
    "iosched": "server",
    "trace.blktrace": "server",
    # client LP: compute-node side.
    "pfs.client": "client",
    "mpi": "client",
    "mpiio": "client",
    "workloads": "client",
    "core.engine": "client",
    "core.pec": "client",
    "core.crm": "client",
    # meta LP: the metadata server node (MDS hosts the EMC; see
    # pfs/metaserver.py docstring and the paper's Fig. 2).
    "pfs.metaserver": "meta",
    "pfs.filesystem": "meta",
    "core.emc": "meta",
    "core.system": "meta",
    # harness: control plane, never partitioned.
    "obs": "harness",
    "guard": "harness",
    "faults": "harness",
    "devtools": "harness",
    "runner": "harness",
    "cluster": "harness",
    "trace.timeline": "harness",
    "core.config": "harness",
    "core.metrics": "harness",
    "analysis": "harness",
    "cli": "harness",
    "workloads.demo": "harness",
}

#: Modules whose classes are message payloads / value objects: both ends
#: of a transfer touch them, ordered by the message that carried them.
PAYLOAD_MODULES = frozenset(
    {"pfs.layout", "iosched.request", "mpi.ops", "mpi.datatypes", "cache.chunk"}
)

#: Individual payload classes living in otherwise LP-owned modules.
PAYLOAD_CLASSES = frozenset(
    {
        "ServerRequest",  # the unit shipped client -> server
        "PfsFile",  # metadata handle returned by the MDS RPCs
        "Segment",  # datasieving/prefetch work unit
    }
)

#: Method names whose *call* mutates the receiver.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "push",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)

#: Attribute names of calls that mark a message boundary: a function
#: containing one of these crosses the network, so cross-domain touches
#: inside it are ordered by the message event.
MEDIATOR_CALLS = frozenset({"transfer", "rpc_create", "rpc_open", "rpc_lookup"})

#: Container methods that *return elements* (or the container itself):
#: calling them on a resolved attribute chain is a read of that
#: attribute, not a method call on the element class.
_CONTAINER_METHODS = frozenset(
    {"values", "get", "copy", "pop", "popleft", "popitem", "setdefault", "count",
     "index", "keys", "items"}
)

#: Mutable-container constructors (a ``self.x = list()`` is state).
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict", "bytearray"}
)

_ANNOTATION_MARKER = "simown:"


def domain_of(module: str) -> str:
    """LP domain of a dotted module path relative to ``repro``."""
    parts = module.split(".")
    for n in range(len(parts), 0, -1):
        hit = DOMAIN_OF_MODULE.get(".".join(parts[:n]))
        if hit is not None:
            return hit
    return "harness"


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


@dataclass
class AttrInfo:
    """One attribute slot of a component class."""

    name: str
    lineno: int
    mutable: bool = False
    class_level: bool = False
    #: why we consider it mutable (first reason wins; diagnostic only)
    why_mutable: str = ""
    #: reason text when the definition line carries ``# simown: shared[...]``
    annotation: Optional[str] = None


@dataclass
class ClassInfo:
    """A class discovered in the tree, with its state and type wiring."""

    name: str
    module: str
    path: str
    lineno: int
    domain: str
    payload: bool = False
    bases: list[str] = field(default_factory=list)
    attrs: dict[str, AttrInfo] = field(default_factory=dict)
    #: attribute name -> bare class name it holds (element type for
    #: containers), used to resolve ``self.x.y`` chains.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class Access:
    """One resolved attribute access on a component."""

    owner: str  # owning class name
    attr: str
    module: str  # accessor's module
    cls: Optional[str]  # accessor's class (None at module level)
    func: str
    path: str
    line: int
    kind: str  # "read" | "write"
    mediated: bool  # enclosing function crosses a message boundary
    annotation: Optional[str] = None


@dataclass
class CallEdge:
    """A resolved method call on another component."""

    owner: str
    method: str
    module: str
    cls: Optional[str]
    func: str
    path: str
    line: int
    mediated: bool
    annotation: Optional[str] = None


@dataclass
class Finding:
    """One shared-hazard site (access or call) for the report/gate."""

    owner: str
    attr: str  # attribute or method name
    site: str  # "path:line"
    detail: str
    annotated: Optional[str]  # reason text when suppressed


@dataclass
class OwnershipGraph:
    """Raw facts from the AST pass, before classification."""

    classes: dict[str, ClassInfo] = field(default_factory=dict)
    accesses: list[Access] = field(default_factory=list)
    call_edges: list[CallEdge] = field(default_factory=list)
    #: module-level mutable bindings in LP/kernel/fabric modules
    module_state: list[tuple[str, str, str, int]] = field(default_factory=list)


@dataclass
class OwnershipReport:
    """Classified ownership: the tool's final answer."""

    graph: OwnershipGraph
    #: class -> attr -> classification string
    attr_class: dict[str, dict[str, str]] = field(default_factory=dict)
    hazards: list[Finding] = field(default_factory=list)

    @property
    def unannotated(self) -> list[Finding]:
        return [f for f in self.hazards if f.annotated is None]


# ---------------------------------------------------------------------------
# Annotation comments
# ---------------------------------------------------------------------------


def _annotations_by_line(source: str) -> dict[int, str]:
    """Map line -> reason for every ``# simown: shared[reason]`` comment.

    An inline comment annotates its own line; a comment standing alone
    on a line annotates the *next* line (for statements too long to
    carry the reason inline).
    """
    out: dict[int, str] = {}
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_ANNOTATION_MARKER):
                continue
            rest = text[len(_ANNOTATION_MARKER) :].strip()
            if rest.startswith("shared[") and rest.endswith("]"):
                reason = rest[len("shared[") : -1].strip()
            elif rest.startswith("shared"):
                reason = ""
            else:
                continue
            row = tok.start[0]
            before = lines[row - 1][: tok.start[1]] if row <= len(lines) else ""
            if before.strip() == "":
                row += 1  # standalone comment blesses the following line
            out[row] = reason
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return out


# ---------------------------------------------------------------------------
# Type-annotation helpers
# ---------------------------------------------------------------------------


def _class_of_annotation(node: Optional[ast.expr]) -> Optional[str]:
    """Bare class name named by an annotation, unwrapping strings,
    ``Optional[X]``, and container element types."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id if node.id[:1].isupper() else None
    if isinstance(node, ast.Attribute):
        return node.attr if node.attr[:1].isupper() else None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        inner = node.slice
        if base_name in ("Optional",):
            return _class_of_annotation(inner)
        if base_name in ("list", "List", "set", "Set", "frozenset", "FrozenSet",
                         "Sequence", "Iterable", "tuple", "Tuple", "deque", "Deque"):
            if isinstance(inner, ast.Tuple) and inner.elts:
                return _class_of_annotation(inner.elts[0])
            return _class_of_annotation(inner)
        if base_name in ("dict", "Dict", "Mapping", "MutableMapping", "defaultdict",
                         "DefaultDict"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                return _class_of_annotation(inner.elts[1])
            return None
        if base_name in ("Union",) and isinstance(inner, ast.Tuple):
            hits = [_class_of_annotation(e) for e in inner.elts]
            real = [h for h in hits if h is not None]
            return real[0] if len(real) == 1 else None
    return None


def _is_mutable_value(node: ast.expr) -> Optional[str]:
    """Why ``node`` builds a mutable container, or None."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                         ast.SetComp)):
        return f"initialised to {type(node).__name__.lower()}"
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None
        )
        if name in _MUTABLE_CALLS:
            return f"initialised to {name}()"
        if name == "field":
            for kw in node.keywords:
                if kw.arg == "default_factory":
                    return "dataclass field(default_factory=...)"
    return None


# ---------------------------------------------------------------------------
# Pass 1 -- collect classes, attributes, type wiring
# ---------------------------------------------------------------------------


class _ClassCollector(ast.NodeVisitor):
    def __init__(self, module: str, path: str, graph: OwnershipGraph,
                 notes: dict[int, str]) -> None:
        self.module = module
        self.path = path
        self.graph = graph
        self.notes = notes
        self._cls: Optional[ClassInfo] = None
        self._func_depth = 0

    # -- module-level state -------------------------------------------

    def _record_module_state(self, target: ast.expr, value: ast.expr,
                             lineno: int) -> None:
        if self._cls is not None or self._func_depth:
            return
        if not isinstance(target, ast.Name) or target.id.startswith("_" * 2):
            return
        why = _is_mutable_value(value)
        if why is not None:
            self.graph.module_state.append((self.module, target.id, why, lineno))

    # -- class / attribute collection ---------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        outer = self._cls
        domain = domain_of(self.module)
        payload = self.module in PAYLOAD_MODULES or node.name in PAYLOAD_CLASSES
        info = ClassInfo(
            name=node.name,
            module=self.module,
            path=self.path,
            lineno=node.lineno,
            domain=domain,
            payload=payload,
            bases=[b.id for b in node.bases if isinstance(b, ast.Name)],
        )
        # Nested classes are rare; outermost wins the registry slot.
        self.graph.classes.setdefault(node.name, info)
        self._cls = info
        for stmt in node.body:
            self._collect_class_stmt(info, stmt)
        self.generic_visit(node)
        self._cls = outer

    def _collect_class_stmt(self, info: ClassInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            attr = info.attrs.setdefault(
                name, AttrInfo(name=name, lineno=stmt.lineno, class_level=True)
            )
            attr.annotation = attr.annotation or self.notes.get(stmt.lineno)
            why = None if stmt.value is None else _is_mutable_value(stmt.value)
            if why is not None and not attr.mutable:
                attr.mutable, attr.why_mutable = True, why
            bound = _class_of_annotation(stmt.annotation)
            if bound is not None:
                info.attr_types.setdefault(name, bound)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    attr = info.attrs.setdefault(
                        target.id,
                        AttrInfo(name=target.id, lineno=stmt.lineno, class_level=True),
                    )
                    attr.annotation = attr.annotation or self.notes.get(stmt.lineno)
                    why = _is_mutable_value(stmt.value)
                    if why is not None and not attr.mutable:
                        attr.mutable, attr.why_mutable = True, why

    def _self_attr(self, node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node)

    def _visit_func(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        info = self._cls
        if info is not None and self._func_depth == 0:
            init_like = node.name in ("__init__", "__post_init__")
            # Parameter annotations wire attr types: ``self.x = param``.
            param_types: dict[str, Optional[str]] = {}
            for arg in list(node.args.args) + list(node.args.kwonlyargs):
                param_types[arg.arg] = _class_of_annotation(arg.annotation)
            for sub in ast.walk(node):
                self._collect_attr_defs(info, sub, init_like, param_types)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def _collect_attr_defs(
        self,
        info: ClassInfo,
        sub: ast.AST,
        init_like: bool,
        param_types: dict[str, Optional[str]],
    ) -> None:
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                name = self._self_attr(target)
                if name is None:
                    continue
                self._define_attr(info, name, sub, sub.value, init_like, param_types)
        elif isinstance(sub, ast.AnnAssign):
            name = self._self_attr(sub.target)
            if name is not None:
                self._define_attr(info, name, sub, sub.value, init_like, param_types)
                bound = _class_of_annotation(sub.annotation)
                if bound is not None:
                    info.attr_types.setdefault(name, bound)
        elif isinstance(sub, ast.AugAssign):
            name = self._self_attr(sub.target)
            if name is not None:
                attr = info.attrs.setdefault(
                    name, AttrInfo(name=name, lineno=sub.lineno)
                )
                if not attr.mutable:
                    attr.mutable = True
                    attr.why_mutable = "augmented assignment"

    def _define_attr(
        self,
        info: ClassInfo,
        name: str,
        stmt: ast.stmt,
        value: Optional[ast.expr],
        init_like: bool,
        param_types: dict[str, Optional[str]],
    ) -> None:
        attr = info.attrs.setdefault(name, AttrInfo(name=name, lineno=stmt.lineno))
        note = self.notes.get(stmt.lineno)
        if note is not None and attr.annotation is None:
            attr.annotation = note
        if not attr.mutable:
            why = None if value is None else _is_mutable_value(value)
            if why is not None:
                attr.mutable, attr.why_mutable = True, why
            elif not init_like:
                attr.mutable = True
                attr.why_mutable = "reassigned outside __init__"
        if value is not None:
            self._bind_attr_type(info, name, value, param_types)

    def _bind_attr_type(
        self,
        info: ClassInfo,
        name: str,
        value: ast.expr,
        param_types: dict[str, Optional[str]],
    ) -> None:
        # ``self.x = param`` with an annotated param.
        if isinstance(value, ast.Name):
            bound = param_types.get(value.id)
            if bound is not None:
                info.attr_types.setdefault(name, bound)
        # ``self.x = ClassName(...)`` direct construction.
        elif isinstance(value, ast.Call):
            fn = value.func
            ctor = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if ctor is not None and ctor[:1].isupper():
                info.attr_types.setdefault(name, ctor)
        # ``self.x = [ClassName(...) for ...]`` comprehension of components.
        elif isinstance(value, ast.ListComp) and isinstance(value.elt, ast.Call):
            fn = value.elt.func
            ctor = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if ctor is not None and ctor[:1].isupper():
                info.attr_types.setdefault(name, ctor)


# ---------------------------------------------------------------------------
# Pass 2 -- resolve accesses and call edges
# ---------------------------------------------------------------------------


class _FunctionScanner:
    """Resolve attribute chains inside one function body."""

    def __init__(
        self,
        graph: OwnershipGraph,
        module: str,
        path: str,
        cls: Optional[ClassInfo],
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        notes: dict[int, str],
    ) -> None:
        self.graph = graph
        self.module = module
        self.path = path
        self.cls = cls
        self.func = func
        self.notes = notes
        self.env: dict[str, str] = {}  # local name -> class name
        if cls is not None:
            self.env["self"] = cls.name
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            bound = _class_of_annotation(arg.annotation)
            if bound is not None:
                self.env[arg.arg] = bound
        self.mediated = self._crosses_message_boundary(func)

    @staticmethod
    def _crosses_message_boundary(
        func: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> bool:
        for sub in ast.walk(func):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in MEDIATOR_CALLS
            ):
                return True
        return False

    # -- chain resolution ---------------------------------------------

    def _resolve(self, node: ast.expr) -> Optional[str]:
        """Class name the expression evaluates to, or None."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._resolve(node.value)
            if base is None:
                return None
            info = self.graph.classes.get(base)
            if info is None:
                return None
            return info.attr_types.get(node.attr)
        if isinstance(node, ast.Subscript):
            # Element type: containers bind their element class.
            return self._resolve(node.value)
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name):
                if fn.id[:1].isupper():
                    return fn.id if fn.id in self.graph.classes else None
                if fn.id in ("sorted", "list", "reversed", "iter", "tuple") and node.args:
                    return self._resolve(node.args[0])
            elif isinstance(fn, ast.Attribute) and fn.attr in _CONTAINER_METHODS:
                # ``d.values()`` / ``q.popleft()``: elements of the chain.
                return self._resolve(fn.value)
        return None

    def _owner_of(self, node: ast.Attribute) -> Optional[str]:
        """Owning class of the attribute being touched, cross-object only."""
        owner = self._resolve(node.value)
        if owner is None or owner not in self.graph.classes:
            return None
        return owner

    # -- the scan ------------------------------------------------------

    def scan(self) -> None:
        body = list(self.func.body)
        for stmt in body:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._record_value(stmt.value)
            for target in stmt.targets:
                self._record_store(target)
                if isinstance(target, ast.Name):
                    bound = self._resolve(stmt.value)
                    if bound is not None:
                        self.env[target.id] = bound
                    else:
                        self.env.pop(target.id, None)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._record_value(stmt.value)
            self._record_store(stmt.target)
            if isinstance(stmt.target, ast.Name):
                bound = _class_of_annotation(stmt.annotation) or (
                    None if stmt.value is None else self._resolve(stmt.value)
                )
                if bound is not None:
                    self.env[stmt.target.id] = bound
        elif isinstance(stmt, ast.AugAssign):
            self._record_value(stmt.value)
            self._record_store(stmt.target, aug=True)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._record_value(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                bound = self._resolve(stmt.iter)
                if bound is not None:
                    self.env[stmt.target.id] = bound
            for s in stmt.body + stmt.orelse:
                self._scan_stmt(s)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._record_value(stmt.test)
            for s in stmt.body + stmt.orelse:
                self._scan_stmt(s)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._record_value(item.context_expr)
            for s in stmt.body:
                self._scan_stmt(s)
        elif isinstance(stmt, ast.Try):
            for s in stmt.body + stmt.orelse + stmt.finalbody:
                self._scan_stmt(s)
            for handler in stmt.handlers:
                for s in handler.body:
                    self._scan_stmt(s)
        elif isinstance(stmt, ast.Expr):
            self._record_value(stmt.value)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self._record_value(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_store(target)
        # Nested defs are scanned as their own functions by the walker.

    # -- recording -----------------------------------------------------

    def _add_access(self, owner: str, attr: str, line: int, kind: str) -> None:
        self.graph.accesses.append(
            Access(
                owner=owner,
                attr=attr,
                module=self.module,
                cls=self.cls.name if self.cls is not None else None,
                func=self.func.name,
                path=self.path,
                line=line,
                kind=kind,
                mediated=self.mediated,
                annotation=self.notes.get(line),
            )
        )

    def _add_call(self, owner: str, method: str, line: int) -> None:
        self.graph.call_edges.append(
            CallEdge(
                owner=owner,
                method=method,
                module=self.module,
                cls=self.cls.name if self.cls is not None else None,
                func=self.func.name,
                path=self.path,
                line=line,
                mediated=self.mediated,
                annotation=self.notes.get(line),
            )
        )

    def _record_store(self, target: ast.expr, aug: bool = False) -> None:
        if isinstance(target, ast.Attribute):
            owner = self._owner_of(target)
            if owner is not None:
                self._add_access(owner, target.attr, target.lineno, "write")
            self._record_value(target.value)
        elif isinstance(target, ast.Subscript):
            # ``x.attr[k] = v`` mutates attr in place.
            if isinstance(target.value, ast.Attribute):
                owner = self._owner_of(target.value)
                if owner is not None:
                    self._add_access(owner, target.value.attr, target.lineno, "write")
            self._record_value(target.value)
            self._record_value(target.slice)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt, aug=aug)

    def _record_value(self, node: ast.expr) -> None:
        # Bind comprehension variables first (``d`` in
        # ``[d.recent_seek_dist() for d in cluster.locality_daemons]``).
        for sub in ast.walk(node):
            if isinstance(sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                                ast.GeneratorExp)):
                for gen in sub.generators:
                    if isinstance(gen.target, ast.Name):
                        bound = self._resolve(gen.iter)
                        if bound is not None:
                            self.env[gen.target.id] = bound
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                recv = sub.func.value
                if sub.func.attr in MUTATOR_METHODS and isinstance(recv, ast.Attribute):
                    owner = self._owner_of(recv)
                    if owner is not None:
                        self._add_access(owner, recv.attr, sub.lineno, "write")
                        continue
                if sub.func.attr in _CONTAINER_METHODS:
                    # ``x.attr.values()`` reads attr; never a call edge on
                    # the container's *element* class.
                    if isinstance(recv, ast.Attribute):
                        owner = self._owner_of(recv)
                        if owner is not None:
                            kind = (
                                "write"
                                if sub.func.attr in MUTATOR_METHODS
                                else "read"
                            )
                            self._add_access(owner, recv.attr, sub.lineno, kind)
                    continue
                owner = self._resolve(recv)
                if owner is not None and owner in self.graph.classes:
                    info = self.graph.classes[owner]
                    if sub.func.attr in info.attrs:
                        kind = (
                            "write" if sub.func.attr in MUTATOR_METHODS else "read"
                        )
                        self._add_access(owner, sub.func.attr, sub.lineno, kind)
                    else:
                        self._add_call(owner, sub.func.attr, sub.lineno)
            elif isinstance(sub, ast.Attribute) and isinstance(sub.ctx, ast.Load):
                owner = self._owner_of(sub)
                if owner is not None:
                    info = self.graph.classes[owner]
                    if sub.attr in info.attrs:
                        self._add_access(owner, sub.attr, sub.lineno, "read")


def _iter_functions(
    tree: ast.Module,
) -> Iterable[tuple[Optional[str], Union[ast.FunctionDef, ast.AsyncFunctionDef]]]:
    """Yield (enclosing class name, function) for every def in the module."""

    def walk(node: ast.AST, cls: Optional[str]) -> Iterable[
        tuple[Optional[str], Union[ast.FunctionDef, ast.AsyncFunctionDef]]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from walk(child, cls)

    yield from walk(tree, None)


# ---------------------------------------------------------------------------
# Driving the two passes
# ---------------------------------------------------------------------------


def _module_name(path: Path) -> str:
    """Dotted module path relative to the ``repro`` package root."""
    parts = list(path.with_suffix("").parts)
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "__root__"


def _py_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            out.extend(
                f
                for f in sorted(path.rglob("*.py"))
                if "__pycache__" not in f.parts
                and not any(part.startswith(".") for part in f.parts)
            )
        elif path.suffix == ".py":
            out.append(path)
    return out


def analyze_paths(paths: Sequence[Union[str, Path]]) -> OwnershipGraph:
    """Run both AST passes over every ``.py`` file under ``paths``."""
    graph = OwnershipGraph()
    sources: list[tuple[Path, str, ast.Module, dict[int, str]]] = []
    for f in _py_files(paths):
        try:
            text = f.read_text(encoding="utf-8")
            tree = ast.parse(text, filename=str(f))
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
        notes = _annotations_by_line(text)
        sources.append((f, _module_name(f), tree, notes))

    # Pass 1: classes, attributes, type wiring.
    for f, module, tree, notes in sources:
        collector = _ClassCollector(module, str(f), graph, notes)
        collector.visit(tree)
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    collector._record_module_state(target, stmt.value, stmt.lineno)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                collector._record_module_state(stmt.target, stmt.value, stmt.lineno)

    # Pass 2: accesses.
    for f, module, tree, notes in sources:
        for cls_name, func in _iter_functions(tree):
            cls = graph.classes.get(cls_name) if cls_name is not None else None
            scanner = _FunctionScanner(graph, module, str(f), cls, func, notes)
            scanner.scan()
    return graph


# ---------------------------------------------------------------------------
# Pass 3 -- classification
# ---------------------------------------------------------------------------

#: classification lattice, worst last
_ORDER = ("lp-private", "harness-observed", "message-mediated", "shared-hazard")


def _worse(a: str, b: str) -> str:
    return a if _ORDER.index(a) >= _ORDER.index(b) else b


def classify(graph: OwnershipGraph) -> OwnershipReport:
    """Classify every mutable attribute of every LP-owned component."""
    report = OwnershipReport(graph=graph)
    by_target: dict[tuple[str, str], list[Access]] = {}
    for acc in graph.accesses:
        by_target.setdefault((acc.owner, acc.attr), []).append(acc)
        # A cross-object write makes the slot mutable state even when the
        # owning class only ever assigns it once in __init__
        # (``engine.locked_out = True`` from the EMC).
        if acc.kind == "write" and acc.cls != acc.owner:
            info = graph.classes.get(acc.owner)
            attr = info.attrs.get(acc.attr) if info is not None else None
            if attr is not None and not attr.mutable:
                attr.mutable = True
                attr.why_mutable = "written cross-object"

    for name in sorted(graph.classes):
        info = graph.classes[name]
        attr_map: dict[str, str] = {}
        for attr_name in sorted(info.attrs):
            attr = info.attrs[attr_name]
            if not attr.mutable:
                continue
            if info.payload:
                attr_map[attr_name] = "payload"
                continue
            if info.domain not in LP_DOMAINS:
                attr_map[attr_name] = info.domain
                continue
            cls_result = "lp-private"
            for acc in by_target.get((name, attr_name), []):
                acc_domain = domain_of(acc.module)
                if acc.cls == name or acc_domain == info.domain:
                    continue
                if acc_domain in ("harness", "kernel"):
                    cls_result = _worse(cls_result, "harness-observed")
                elif acc_domain == "fabric" or acc.mediated:
                    cls_result = _worse(cls_result, "message-mediated")
                else:
                    cls_result = _worse(cls_result, "shared-hazard")
                    report.hazards.append(
                        Finding(
                            owner=name,
                            attr=attr_name,
                            site=f"{acc.path}:{acc.line}",
                            detail=(
                                f"{acc.kind} of {name}.{attr_name} "
                                f"({info.domain} LP) from "
                                f"{acc.cls or acc.module}.{acc.func} "
                                f"({acc_domain} LP) without a message boundary"
                            ),
                            annotated=(
                                acc.annotation
                                if acc.annotation is not None
                                else attr.annotation
                            ),
                        )
                    )
            if attr.annotation is not None and cls_result == "shared-hazard":
                cls_result = "shared-annotated"
            attr_map[attr_name] = cls_result
        if attr_map:
            report.attr_class[name] = attr_map

    # Unmediated cross-LP call edges are hazards too: the mutation they
    # trigger happens via ``self`` inside the callee, invisible above.
    for edge in graph.call_edges:
        info = graph.classes.get(edge.owner)
        if info is None or info.payload or info.domain not in LP_DOMAINS:
            continue
        caller_domain = domain_of(edge.module)
        if caller_domain == info.domain or caller_domain not in LP_DOMAINS:
            continue
        if edge.mediated:
            continue
        report.hazards.append(
            Finding(
                owner=edge.owner,
                attr=edge.method,
                site=f"{edge.path}:{edge.line}",
                detail=(
                    f"call {edge.owner}.{edge.method}() ({info.domain} LP) from "
                    f"{edge.cls or edge.module}.{edge.func} ({caller_domain} LP) "
                    "without a message boundary"
                ),
                annotated=edge.annotation,
            )
        )
    report.hazards.sort(key=lambda f: (f.site, f.owner, f.attr))
    return report


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def partition_map(report: OwnershipReport) -> dict[str, object]:
    """The stable JSON artifact item 2's partitioner consumes.

    Deliberately line-number-free so the golden test only fails on
    *semantic* drift: a component moving domains, an attribute changing
    classification, a hazard appearing or losing its annotation.
    """
    components: dict[str, object] = {}
    for name in sorted(report.graph.classes):
        info = report.graph.classes[name]
        attrs = report.attr_class.get(name, {})
        mutable = {a: attrs[a] for a in sorted(attrs)}
        components[name] = {
            "module": info.module,
            "domain": "payload" if info.payload else info.domain,
            "mutable_attrs": mutable,
            "n_immutable_attrs": sum(
                1 for a in info.attrs.values() if not a.mutable
            ),
        }
    hazards = [
        {
            "owner": f.owner,
            "attr": f.attr,
            "annotated": f.annotated,
        }
        for f in report.hazards
    ]
    # Collapse duplicate (owner, attr) hazard rows; keep any annotation.
    seen: dict[tuple[str, str], Optional[str]] = {}
    for h in hazards:
        key = (str(h["owner"]), str(h["attr"]))
        prev = seen.get(key)
        note = h["annotated"]
        seen[key] = prev if prev is not None else (note if isinstance(note, str) else None)
    return {
        "version": 1,
        "domains": {
            "lp": list(LP_DOMAINS),
            "shared": ["kernel", "fabric", "harness", "payload"],
        },
        "components": components,
        "module_state": [
            {"module": m, "name": n, "why": w}
            for (m, n, w, _line) in sorted(report.graph.module_state)
        ],
        "hazards": [
            {"owner": o, "attr": a, "annotated": note}
            for (o, a), note in sorted(seen.items())
        ],
    }


def render_text(report: OwnershipReport) -> str:
    counts: dict[str, int] = {}
    for attrs in report.attr_class.values():
        for c in attrs.values():
            counts[c] = counts.get(c, 0) + 1
    lines = ["simown ownership report", "======================="]
    total = sum(counts.values())
    lines.append(f"{len(report.attr_class)} stateful components, "
                 f"{total} mutable attributes:")
    for c in ("lp-private", "message-mediated", "harness-observed",
              "shared-annotated", "shared-hazard", "payload",
              "kernel", "fabric", "harness"):
        if counts.get(c):
            lines.append(f"  {c:18s} {counts[c]}")
    interesting = {"shared-hazard", "shared-annotated", "message-mediated"}
    for name in sorted(report.attr_class):
        attrs = {
            a: c for a, c in report.attr_class[name].items() if c in interesting
        }
        if not attrs:
            continue
        info = report.graph.classes[name]
        lines.append(f"\n{name} ({info.module}, {info.domain} LP):")
        for a, c in sorted(attrs.items()):
            note = info.attrs[a].annotation
            suffix = f"  -- shared[{note}]" if note else ""
            lines.append(f"  .{a:24s} {c}{suffix}")
    if report.hazards:
        lines.append("\nhazard sites:")
        for f in report.hazards:
            mark = f"annotated[{f.annotated}]" if f.annotated is not None else "UNANNOTATED"
            lines.append(f"  {f.site}: {f.detail} [{mark}]")
    n_bad = len(report.unannotated)
    lines.append(
        f"\n{len(report.hazards)} hazard site(s), {n_bad} unannotated"
        + ("" if n_bad else " -- tree is partition-clean")
    )
    return "\n".join(lines)


def render_json(report: OwnershipReport) -> str:
    doc = partition_map(report)
    doc["hazard_sites"] = [
        {
            "owner": f.owner,
            "attr": f.attr,
            "site": f.site,
            "detail": f.detail,
            "annotated": f.annotated,
        }
        for f in report.hazards
    ]
    return json.dumps(doc, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro ownership`` entry point (also ``python -m`` friendly)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro ownership",
        description="simown: state-ownership & cross-LP sharing analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--out", metavar="MAP.json", default=None,
                        help="write the partition map (stable JSON) here")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on unannotated shared-hazard findings")
    args = parser.parse_args(list(argv) if argv is not None else None)

    graph = analyze_paths(args.paths or ["src"])
    report = classify(graph)
    if args.out:
        Path(args.out).write_text(
            json.dumps(partition_map(report), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    if args.check and report.unannotated:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
