"""SimSanitizer: opt-in runtime invariant checker for the event kernel.

Static lint (``simlint``) catches hazard *patterns*; the sanitizer
catches hazard *instances* while a simulation runs.  Enable it with
``REPRO_SANITIZE=1`` in the environment, ``Simulator(sanitize=True)``,
or the ``--sanitize`` CLI flag.  Checks:

- **event-time monotonicity** -- the dispatch clock never moves
  backwards and no event carries a negative timestamp;
- **schedule-key ordering** -- every dispatched ``(time, priority,
  sequence)`` key is strictly greater than the previous one.  A recycled
  event re-queued with a stale sequence number (the exact class of bug a
  free-list pool can introduce) breaks this immediately, because tie
  order would then depend on pool state rather than trigger order;
- **double dispatch** -- an event popped from the schedule twice
  (aliased heap entries) is reported at the second pop;
- **process lifecycle** -- non-daemon processes still alive when the
  schedule drains are leaks (deadlocked or forgotten); reported with
  their names;
- **resource ownership** -- every granted :class:`~repro.sim.resources.
  Resource` slot is tracked with its owning process; a double release or
  a slot still held at drain time is reported *with attribution* (who
  acquired it, when, and who released it first);
- **fault-injection lifecycle** -- components (e.g. crashed data
  servers) register and unregister themselves; a resurrection that
  registers twice, an unregister of an unknown component, or a crashed
  server dispatching new work is reported immediately.

All violations raise :class:`SanitizerError` (a
:class:`~repro.sim.core.SimulationError`), so an unsanitized run and a
sanitized run of a correct simulation produce identical results -- the
sanitizer only observes, it never perturbs scheduling.

Setting ``REPRO_SANITIZE_OWNERSHIP=1`` additionally arms the
:class:`OwnershipChecker` -- the dynamic half of simown (see
:mod:`repro.devtools.ownership` and ``docs/static_analysis.md``): each
component is tagged with its owning logical process (LP), simulated
processes inherit or adopt an LP, and instrumented access points
(``DataServer.handle``, ``BlockLayer.submit``, metadata RPCs) verify
that any cross-LP access was preceded by a
:meth:`~repro.net.ethernet.Network.transfer` into the owner's node --
the sim-level happens-before edge a real message would create.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.sim.core import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Event, Process, Simulator

__all__ = ["OwnershipChecker", "OwnershipError", "SanitizerError", "SimSanitizer"]

#: Cap on the number of leaks enumerated in one error message.
_REPORT_LIMIT = 8


class SanitizerError(SimulationError):
    """A simulation invariant was violated (only raised when sanitizing)."""


class OwnershipError(SanitizerError):
    """A component was accessed from a foreign logical process without a
    message boundary (only raised when the ownership checker is armed)."""


class OwnershipChecker:
    """Dynamic half of simown: validates the static partition map at run
    time.

    Components are :meth:`tag`-ged with an owning LP label (e.g.
    ``"server:ds0"``, ``"meta"``, ``"client:node4"``); simulated
    processes get an LP by :meth:`adopt`-ion (rank bodies, server
    service processes, daemons) or inherit their creator's.  A completed
    :meth:`~repro.net.ethernet.Network.transfer` to a node *grants* the
    active process access to that node's LP -- the happens-before edge a
    real message would create.  :meth:`check` then enforces: a process
    may touch a tagged component only when its LP is unknown (harness),
    matches the owner, or holds a message grant for the owner's LP.

    The checker holds no event references and never mutates simulation
    state, so an armed run is bit-identical to an unarmed one.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: id(component) -> (component, lp); the component reference keeps
        #: the id stable for the simulation's lifetime.
        self._components: dict[int, tuple[Any, str]] = {}
        self._node_lp: dict[int, str] = {}
        self._proc_lp: dict["Process", str] = {}
        #: process -> LP labels it has messaged into.
        self._grants: dict["Process", set[str]] = {}
        self.n_checks = 0
        self.n_crossings = 0
        self.n_cross_lp = 0

    # -- topology registration -----------------------------------------

    def tag(self, component: Any, lp: str) -> None:
        """Declare ``component`` owned by logical process ``lp``."""

        self._components[id(component)] = (component, lp)

    def lp_of(self, component: Any) -> Optional[str]:
        rec = self._components.get(id(component))
        return rec[1] if rec is not None else None

    def map_node(self, node_id: int, lp: str) -> None:
        """Declare that messages to ``node_id`` land in ``lp``."""

        self._node_lp[node_id] = lp

    def adopt(self, proc: "Process", lp: str) -> None:
        """Pin ``proc``'s owning LP (overrides inheritance)."""

        self._proc_lp[proc] = lp

    def lp_of_process(self, proc: "Process") -> Optional[str]:
        return self._proc_lp.get(proc)

    # -- runtime hooks --------------------------------------------------

    def on_process_created(self, proc: "Process") -> None:
        """A child process runs in its creator's LP unless adopted."""

        creator = self.sim.active_process
        if creator is None:
            return
        lp = self._proc_lp.get(creator)
        if lp is not None:
            self._proc_lp[proc] = lp

    def on_transfer(self, src: int, dst: int) -> None:
        """A network message landed: grant the sender access to ``dst``'s
        LP (the message *is* the happens-before edge)."""

        proc = self.sim.active_process
        if proc is None:
            return
        self.n_crossings += 1
        lp = self._node_lp.get(dst)
        if lp is not None:
            self._grants.setdefault(proc, set()).add(lp)

    def check(self, component: Any, action: str = "access") -> None:
        """Validate that the active process may touch ``component``."""

        rec = self._components.get(id(component))
        if rec is None:
            return
        proc = self.sim.active_process
        if proc is None:  # harness context (setup/teardown) is unrestricted
            return
        self.n_checks += 1
        owner_lp = rec[1]
        lp = self._proc_lp.get(proc)
        if lp is None or lp == owner_lp:
            return
        self.n_cross_lp += 1
        if owner_lp in self._grants.get(proc, ()):
            return
        raise OwnershipError(
            f"cross-LP {action}: process {proc.name!r} (LP {lp}) touched "
            f"{type(rec[0]).__name__} owned by LP {owner_lp} at "
            f"t={self.sim.now:.6g} without a message boundary; route the "
            "access through Network.transfer or re-partition (see "
            "docs/static_analysis.md)"
        )

    # -- introspection --------------------------------------------------

    def summary(self) -> dict[str, Any]:
        return {
            "n_components": len(self._components),
            "n_tagged_processes": len(self._proc_lp),
            "n_checks": self.n_checks,
            "n_crossings": self.n_crossings,
            "n_cross_lp": self.n_cross_lp,
        }


@dataclass
class _RequestRecord:
    """Lifecycle of one resource request, for attribution."""

    resource: str
    owner: Optional[str]
    owner_daemon: bool
    requested_at: float
    state: str = "pending"  # pending -> granted -> released | cancelled
    granted_at: Optional[float] = None
    released_at: Optional[float] = None
    released_by: Optional[str] = None

    def describe(self) -> str:
        who = self.owner if self.owner is not None else "<no active process>"
        when = (
            f"granted at t={self.granted_at:.6g}"
            if self.granted_at is not None
            else f"requested at t={self.requested_at:.6g}"
        )
        return f"{self.resource} held by {who!r} ({when})"


@dataclass
class SanitizerStats:
    """Counters exposed for introspection and tests."""

    n_events: int = 0
    n_ties: int = 0
    n_requests: int = 0
    n_releases: int = 0
    leaked_processes: list[str] = field(default_factory=list)
    leaked_requests: list[str] = field(default_factory=list)


class SimSanitizer:
    """Runtime checker attached to one :class:`Simulator`.

    The simulator calls :meth:`on_dispatch` for every event it pops and
    :meth:`on_quiescent` when the schedule drains; the resource classes
    call the acquire/release hooks.  The sanitizer holds no references to
    events (so the Timeout free list keeps recycling) and never mutates
    simulation state.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.stats = SanitizerStats()
        #: Dynamic simown checker, armed by REPRO_SANITIZE_OWNERSHIP=1.
        self.ownership: Optional[OwnershipChecker] = (
            OwnershipChecker(sim)
            if os.environ.get("REPRO_SANITIZE_OWNERSHIP")
            else None
        )
        self._last_key: tuple[float, int, int] = (float("-inf"), -(2**62), -(2**62))
        #: insertion-ordered map of live non-daemon processes (removed on exit)
        self._live: dict["Process", None] = {}
        #: request object -> lifecycle record (insertion-ordered)
        self._requests: dict[Any, _RequestRecord] = {}
        #: registered fault-aware components (key -> registration time)
        self._components: dict[str, float] = {}

    # -- dispatch-loop hooks -------------------------------------------

    def on_dispatch(self, t: float, priority: int, seq: int, event: "Event") -> None:
        """Validate one popped schedule entry, *before* it is processed."""

        stats = self.stats
        stats.n_events += 1
        if t < 0:
            raise SanitizerError(
                f"negative event timestamp t={t!r} for {event!r}"
            )
        last_t, last_p, last_s = self._last_key
        if t < last_t:
            raise SanitizerError(
                f"time went backwards: dispatching t={t!r} after t={last_t!r} "
                f"({event!r})"
            )
        # Within one (time, priority) band, dispatch must follow trigger
        # order: every push takes a fresh, larger sequence number, so a
        # smaller-or-equal seq here means a stale entry (e.g. a recycled
        # event re-queued with its old key), whose tie order would depend
        # on pool state rather than trigger order.  A *lower* priority at
        # the same time is legitimate: urgent events created while
        # processing this timestep dispatch before the band continues.
        if t == last_t:
            stats.n_ties += 1
            if priority == last_p and seq <= last_s:
                raise SanitizerError(
                    "schedule tie order violated: "
                    f"(t={t!r}, prio={priority}, seq={seq}) dispatched after "
                    f"seq={last_s} in the same band for {event!r}; stale "
                    "sequence numbers make tie dispatch order pool-dependent "
                    "instead of trigger-ordered"
                )
        if event._processed:
            raise SanitizerError(
                f"double dispatch: {event!r} was already processed "
                "(aliased schedule entries, e.g. a recycled event re-queued "
                "while still scheduled)"
            )
        self._last_key = (t, priority, seq)

    def on_quiescent(self, now: float) -> None:
        """Schedule drained: report still-alive processes and held slots."""

        leaked_procs = [p for p in self._live if p.is_alive and not p.daemon]
        leaked_reqs = [
            rec
            for rec in self._requests.values()
            if rec.state == "granted" and not rec.owner_daemon
        ]
        self.stats.leaked_processes = [p.name for p in leaked_procs]
        self.stats.leaked_requests = [r.describe() for r in leaked_reqs]
        problems: list[str] = []
        if leaked_procs:
            names = ", ".join(repr(p.name) for p in leaked_procs[:_REPORT_LIMIT])
            extra = len(leaked_procs) - _REPORT_LIMIT
            if extra > 0:
                names += f", ... {extra} more"
            problems.append(
                f"{len(leaked_procs)} process(es) still alive at t={now:.6g}: "
                f"{names} (deadlocked or leaked; mark intentional service "
                "loops with daemon=True)"
            )
        if leaked_reqs:
            held = "; ".join(r.describe() for r in leaked_reqs[:_REPORT_LIMIT])
            extra = len(leaked_reqs) - _REPORT_LIMIT
            if extra > 0:
                held += f"; ... {extra} more"
            problems.append(
                f"{len(leaked_reqs)} resource slot(s) never released: {held}"
            )
        if problems:
            raise SanitizerError("; ".join(problems))

    # -- process lifecycle ---------------------------------------------

    def on_process_created(self, proc: "Process") -> None:
        if self.ownership is not None:
            self.ownership.on_process_created(proc)
        if proc.daemon:
            return
        self._live[proc] = None
        # A Process *is* its completion event; drop it from the live map
        # when that event is processed.  Appending a callback does not
        # change scheduling, only observation.
        callbacks = proc.callbacks
        if callbacks is not None:
            callbacks.append(self._process_done)

    def _process_done(self, event: "Event") -> None:
        self._live.pop(event, None)  # type: ignore[call-overload]

    # -- resource ownership --------------------------------------------

    def on_request(self, resource: Any, request: Any) -> None:
        """A request was created (may be queued before being granted)."""

        owner = self.sim.active_process
        self.stats.n_requests += 1
        self._requests[request] = _RequestRecord(
            resource=self._describe_resource(resource),
            owner=None if owner is None else owner.name,
            owner_daemon=bool(owner is not None and owner.daemon),
            requested_at=self.sim.now,
        )

    def on_acquire(self, resource: Any, request: Any) -> None:
        """A request was granted a slot (immediately or from the queue)."""

        rec = self._requests.get(request)
        if rec is None:  # request predates the sanitizer; ignore
            return
        rec.state = "granted"
        rec.granted_at = self.sim.now

    def on_release(self, resource: Any, request: Any) -> None:
        """A request is being released; raises on double release."""

        rec = self._requests.get(request)
        if rec is None:
            return
        releaser = self.sim.active_process
        releaser_name = None if releaser is None else releaser.name
        if rec.state in ("released", "cancelled"):
            first = (
                f"first released at t={rec.released_at:.6g} by "
                f"{rec.released_by!r}"
                if rec.released_at is not None
                else "cancelled while queued"
            )
            raise SanitizerError(
                f"double release of {rec.resource} slot acquired by "
                f"{rec.owner!r} (granted at t="
                f"{rec.granted_at if rec.granted_at is not None else rec.requested_at:.6g}); "
                f"{first}; released again at t={self.sim.now:.6g} by "
                f"{releaser_name!r}"
            )
        rec.state = "released" if rec.state == "granted" else "cancelled"
        rec.released_at = self.sim.now
        rec.released_by = releaser_name
        self.stats.n_releases += 1

    # -- fault-injection lifecycle --------------------------------------

    def on_component_registered(self, key: str) -> None:
        """A fault-aware component came up (construction or recovery).

        Raises when ``key`` is already registered: a resurrection that
        re-registers without having crashed would double-create state.
        """

        if key in self._components:
            raise SanitizerError(
                f"component {key!r} registered twice (first at "
                f"t={self._components[key]:.6g}, again at t={self.sim.now:.6g}); "
                "a recovery must follow a crash, not duplicate a live component"
            )
        self._components[key] = self.sim.now

    def on_component_unregistered(self, key: str) -> None:
        """A fault-aware component went down (crash).  Raises when the
        component was never registered (or already unregistered)."""

        if key not in self._components:
            raise SanitizerError(
                f"component {key!r} unregistered at t={self.sim.now:.6g} "
                "but was not registered (double crash, or a component that "
                "never announced itself)"
            )
        del self._components[key]

    def on_server_dispatch(self, server: Any) -> None:
        """A data server is about to submit block work; a crashed server
        must not dispatch new requests."""

        if getattr(server, "crashed", False):
            name = getattr(server, "server_index", "?")
            raise SanitizerError(
                f"crashed data server ds{name} dispatched block work at "
                f"t={self.sim.now:.6g}; crash() must sever all service paths"
            )

    @staticmethod
    def _describe_resource(resource: Any) -> str:
        cap = getattr(resource, "capacity", None)
        name = type(resource).__name__
        return f"{name}(capacity={cap})" if cap is not None else name

    # -- introspection --------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Snapshot of counters plus currently-open state."""

        open_reqs = sum(1 for r in self._requests.values() if r.state == "granted")
        out = {
            "n_events": self.stats.n_events,
            "n_ties": self.stats.n_ties,
            "n_requests": self.stats.n_requests,
            "n_releases": self.stats.n_releases,
            "live_processes": sum(1 for p in self._live if p.is_alive),
            "open_requests": open_reqs,
            "registered_components": len(self._components),
        }
        if self.ownership is not None:
            out["ownership"] = self.ownership.summary()
        return out
