"""simlint: AST lint rules for discrete-event-simulation hazards.

The simulator's claims rest on reproducible event ordering: a simulation
must be a pure function of its inputs.  These rules catch the code
patterns that historically break that property long before a determinism
regression test does, because they never fire at all on a lucky hash
seed:

- **SL001** iteration over a ``set``/``frozenset``/``dict.keys()`` of
  non-literal origin inside simulation packages.  Set iteration order
  depends on element hashes (and, for strings, on ``PYTHONHASHSEED``);
  if the order feeds the event schedule, two runs diverge.  Iterate a
  ``sorted(...)`` view, or a dict/list which are insertion-ordered.
- **SL002** wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``datetime.now`` ...) outside ``benchmarks/``,
  ``runner/``, and ``service/``.  Simulation code must read ``sim.now``;
  wall time is for the measurement harness and the serving layer only.
- **SL003** module-level ``random.*`` / ``numpy.random.*`` calls.  The
  global RNG is cross-contaminated by any other caller; use a seeded
  ``random.Random`` / ``numpy.random.default_rng`` instance owned by the
  simulator or workload.
- **SL004** mutable default arguments (shared across calls, and across
  *simulations* when the function is module-level).
- **SL005** ``yield`` of an obviously-non-Event value (constant, tuple,
  list, bare ``yield``) inside a generator that otherwise yields
  simulation events -- the kernel only accepts :class:`Event` yields.
- **SL006** unbounded queue growth in simulation packages: a ``deque()``
  constructed without ``maxlen``, or an empty-list assignment to a
  queue-named attribute (``*queue*``/``*waiter*``/``*backlog*``).
  Simulated workloads can enqueue without bound; every queue needs a
  ``maxlen``, a charge against a :class:`repro.guard.MemoryBudget`, or
  an ignore comment documenting why its growth is bounded.
- **SL007** direct mutation of *another* component's container:
  ``self.server.queue.append(...)``, ``other.pending[k] = v`` -- a
  mutator call or subscript store whose container lives behind an
  attribute chain that crosses an object boundary.  Cross-component
  writes are exactly the shared state that blocks the conservative
  parallel-DES partitioning (see ``repro.devtools.ownership``); route
  them through the owner's API or a message, or annotate why not.
- **SL008** module-level mutable state (``X = []`` / ``{}`` / ``set()``
  / ``deque()``) in simulation packages.  Module globals are shared
  across every simulation in the process, so mutations leak between
  supposedly independent cells and across ``runner.parallel`` workers.

Suppress a finding by appending ``# simlint: ignore[SL001]`` (or a
comma-separated list, or bare ``# simlint: ignore`` for all rules) to
the flagged line -- ideally with a trailing reason.

Usage::

    repro lint src                      # text report, exit 1 on findings
    repro lint src --format json        # machine-readable
    python -m repro.devtools.simlint src/repro/sim

No third-party dependencies: stdlib ``ast`` + ``tokenize`` only.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePath
from typing import Iterable, Iterator, Optional, Sequence, Union

__all__ = [
    "Finding",
    "RULES",
    "changed_paths",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_json",
    "render_text",
]

#: rule id -> one-line description (the catalogue; keep docs/static_analysis.md in sync)
RULES: dict[str, str] = {
    "SL001": "iteration over set/frozenset/dict.keys() of non-literal origin in sim code",
    "SL002": "wall-clock read (time.*/datetime.now) outside benchmarks/, runner/, service/",
    "SL003": "module-level random.*/numpy.random.* call instead of an owned seeded RNG",
    "SL004": "mutable default argument",
    "SL005": "yield of a non-Event value inside a simulation process generator",
    "SL006": "unbounded deque()/list queue in sim code without a documented budget",
    "SL007": "direct mutation of another component's container across an object boundary",
    "SL008": "module-level mutable state in sim code (shared across simulations)",
}

#: Attributes exempt from SL007: ``Event.callbacks`` is the kernel's
#: documented registration surface -- appending a completion callback is
#: how every component consumes events, not shared-state mutation.
_SL007_EXEMPT_ATTRS = frozenset({"callbacks"})

#: Method names whose call mutates the receiving container (SL007).
_SL007_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "push",
        "remove",
        "setdefault",
        "update",
    }
)

#: Subpackages of ``repro`` where SL001/SL006 apply (simulation code).
SIM_PACKAGES = frozenset(
    {"sim", "disk", "iosched", "pfs", "cache", "mpiio", "core", "obs", "faults", "guard"}
)
#: Path segments exempt from SL002 (the wall-clock measurement harness
#: plus the experiment service, whose provenance stamps, worker wall
#: times, and socket timeouts legitimately live in wall-clock time).
WALLCLOCK_EXEMPT_PARTS = frozenset({"benchmarks", "runner", "service"})

_WALLCLOCK_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)
_DATETIME_FACTORIES = frozenset({"now", "utcnow", "today"})
#: random.* names that construct an *instance* RNG (allowed).
_RANDOM_ALLOWED = frozenset({"Random"})
#: numpy.random names that construct seeded instance RNGs (allowed).
_NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)
#: Method/function names whose call result is (very likely) an Event; a
#: generator yielding one of these is treated as a simulation process.
_EVENTISH_CALLS = frozenset(
    {
        "timeout",
        "event",
        "request",
        "arrive",
        "acquire",
        "wait",
        "all_of",
        "any_of",
        "put",
        "get",
        "transfer",
        "io",
        "run_cycle",
    }
)
_MUTABLE_FACTORY_NAMES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict", "bytearray"}
)

#: Attribute names SL006 treats as queues when assigned a fresh list.
_QUEUEISH_RE = re.compile(r"queue|waiter|backlog", re.IGNORECASE)

_IGNORE_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# ignore-comment parsing
# ---------------------------------------------------------------------------


def _ignores_by_line(source: str) -> dict[int, Optional[frozenset[str]]]:
    """line number -> ignored rule ids (``None`` means *all* rules)."""

    out: dict[int, Optional[frozenset[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _IGNORE_RE.search(tok.string)
            if not m:
                continue
            raw = m.group("rules")
            line = tok.start[0]
            if raw is None:
                out[line] = None
                continue
            rules = frozenset(
                r.strip().upper() for r in raw.split(",") if r.strip()
            )
            prev = out.get(line, frozenset())
            if prev is None:
                continue
            out[line] = prev | rules
    except tokenize.TokenError:
        # Malformed trailing source; the ast parse will report it anyway.
        pass
    return out


def _is_ignored(
    finding: Finding, ignores: dict[int, Optional[frozenset[str]]]
) -> bool:
    if finding.line not in ignores:
        return False
    rules = ignores[finding.line]
    return rules is None or finding.rule in rules


# ---------------------------------------------------------------------------
# file profile (which rules apply where)
# ---------------------------------------------------------------------------


def _profile_for_path(path: str) -> tuple[bool, bool]:
    """Return ``(sim_scope, wallclock_exempt)`` for a file path.

    ``sim_scope`` enables SL001 (packages whose iteration order feeds the
    event schedule); ``wallclock_exempt`` disables SL002 (the measurement
    harness legitimately reads wall time).
    """

    parts = PurePath(path).parts
    sim_scope = False
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 1 < len(parts):
            sub = parts[idx + 1]
            sim_scope = sub in SIM_PACKAGES or sub.startswith("dualpar")
    wallclock_exempt = any(p in WALLCLOCK_EXEMPT_PARTS for p in parts)
    return sim_scope, wallclock_exempt


# ---------------------------------------------------------------------------
# the visitor
# ---------------------------------------------------------------------------


def _is_set_annotation(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset")
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.partition("[")[0].strip() in ("set", "frozenset")
    return False


def _collect_set_attrs(tree: ast.AST) -> frozenset[str]:
    """Attribute names with set-typed declarations anywhere in the module.

    Covers ``self.x = set()``, ``self.x: set[int] = ...``, class-level
    ``x: set[int]`` annotations, and dataclass ``x: set[int] =
    field(default_factory=set)``.  Name-based, so a same-named non-set
    attribute elsewhere in the module is conservatively treated as a set
    (suppress with an ignore comment if that ever misfires).
    """

    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
            target = node.target
            if isinstance(target, ast.Attribute):
                out.add(target.attr)
            elif isinstance(target, ast.Name):
                # Class-body annotation (dataclass field or plain attr):
                # recorded by name; function-local ones are scope-tracked.
                out.add(target.id)
        elif isinstance(node, ast.Assign):
            value_is_set = (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in ("set", "frozenset")
            ) or isinstance(node.value, ast.SetComp)
            if value_is_set:
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        out.add(target.attr)
    return frozenset(out)


class _LintVisitor(ast.NodeVisitor):
    """Single-pass visitor implementing SL001-SL005."""

    def __init__(self, path: str, sim_scope: bool, wallclock_exempt: bool,
                 select: frozenset[str],
                 set_attrs: frozenset[str] = frozenset()) -> None:
        self.path = path
        self.sim_scope = sim_scope
        self.wallclock_exempt = wallclock_exempt
        self.select = select
        self.set_attrs = set_attrs
        # SL007 never applies inside the event kernel: Simulator, Event,
        # and the queue disciplines are one shared unit by construction
        # (the "kernel" domain of repro.devtools.ownership).
        parts = PurePath(path).parts
        self._kernel_scope = (
            "repro" in parts
            and parts.index("repro") + 1 < len(parts)
            and parts[parts.index("repro") + 1] == "sim"
        )
        self.findings: list[Finding] = []
        # import tracking
        self._time_modules: set[str] = set()
        self._time_funcs: set[str] = set()  # from time import perf_counter [as x]
        self._datetime_modules: set[str] = set()
        self._datetime_classes: set[str] = set()  # from datetime import datetime/date
        self._random_modules: set[str] = set()
        self._random_funcs: set[str] = set()  # from random import randint [as x]
        self._numpy_modules: set[str] = set()
        self._numpy_random_modules: set[str] = set()
        self._numpy_random_funcs: set[str] = set()
        # SL001 per-function scopes: name -> is a (non-literal) set
        self._scopes: list[dict[str, bool]] = [{}]
        # SL007: locals bound to objects constructed in this function
        # (mutating a value object you just built is not cross-component)
        self._constructed: list[set[str]] = [set()]
        # SL008: nesting depth (0 = module level)
        self._def_depth = 0

    # -- helpers --------------------------------------------------------

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        if rule not in self.select:
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(self.path, line, col, rule, message))

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_modules.add(bound)
            elif alias.name == "datetime":
                self._datetime_modules.add(bound)
            elif alias.name == "random":
                self._random_modules.add(bound)
            elif alias.name in ("numpy", "numpy.random"):
                if alias.name == "numpy.random" and alias.asname:
                    self._numpy_random_modules.add(alias.asname)
                else:
                    self._numpy_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        mod = node.module or ""
        for alias in node.names:
            bound = alias.asname or alias.name
            if mod == "time" and alias.name in _WALLCLOCK_TIME_FUNCS:
                self._time_funcs.add(bound)
            elif mod == "datetime" and alias.name in ("datetime", "date"):
                self._datetime_classes.add(bound)
            elif mod == "random" and alias.name not in _RANDOM_ALLOWED:
                self._random_funcs.add(bound)
            elif mod == "numpy" and alias.name == "random":
                self._numpy_random_modules.add(bound)
            elif mod == "numpy.random" and alias.name not in _NUMPY_RANDOM_ALLOWED:
                self._numpy_random_funcs.add(bound)
        self.generic_visit(node)

    # -- SL004 + scope handling + SL005 ---------------------------------

    def _check_defaults(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]) -> None:
        defaults: list[Optional[ast.expr]] = list(node.args.defaults)
        defaults += list(node.args.kw_defaults)
        for d in defaults:
            if d is None:
                continue
            mutable = isinstance(d, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                     ast.SetComp, ast.DictComp))
            if (
                not mutable
                and isinstance(d, ast.Call)
                and isinstance(d.func, ast.Name)
                and d.func.id in _MUTABLE_FACTORY_NAMES
            ):
                mutable = True
            if mutable:
                self._add(
                    "SL004",
                    d,
                    "mutable default argument is shared across calls; "
                    "default to None and create inside the body",
                )

    def _visit_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self._check_defaults(node)
        self._check_process_yields(node)
        self._scopes.append({})
        self._constructed.append(set())
        self._def_depth += 1
        self.generic_visit(node)
        self._def_depth -= 1
        self._constructed.pop()
        self._scopes.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._def_depth += 1
        self.generic_visit(node)
        self._def_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _own_yields(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Iterator[ast.Yield]:
        """Yield expressions belonging to *this* generator (not nested defs)."""

        stack: list[ast.AST] = list(node.body)
        while stack:
            cur = stack.pop()
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                                ast.ClassDef)):
                continue
            if isinstance(cur, ast.Yield):
                yield cur
            stack.extend(ast.iter_child_nodes(cur))

    @staticmethod
    def _looks_eventish(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        return name in _EVENTISH_CALLS

    def _check_process_yields(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        yields = list(self._own_yields(node))
        if not any(y.value is not None and self._looks_eventish(y.value) for y in yields):
            return  # not recognisably a simulation process
        for y in yields:
            v = y.value
            bad: Optional[str] = None
            if v is None:
                bad = "bare `yield` (yields None)"
            elif isinstance(v, ast.Constant):
                bad = f"constant {v.value!r}"
            elif isinstance(v, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
                bad = type(v).__name__.lower()
            elif isinstance(v, ast.JoinedStr):
                bad = "f-string"
            if bad is not None:
                self._add(
                    "SL005",
                    y,
                    f"process generator {node.name!r} yields {bad}; "
                    "the kernel only accepts Event yields",
                )

    # -- SL001: set-origin tracking and iteration sites -----------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Set):
            # A literal of pure constants is deterministic enough to pass
            # ("non-literal origin" in the rule); any computed element is not.
            return not all(isinstance(e, ast.Constant) for e in node.elts)
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    # -- SL007/SL008 helpers --------------------------------------------

    @staticmethod
    def _is_mutable_container(value: ast.expr) -> bool:
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.SetComp, ast.DictComp)):
            return True
        if isinstance(value, ast.Call):
            fn = value.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else ""
            )
            return name in _MUTABLE_FACTORY_NAMES
        return False

    @staticmethod
    def _chain_root(expr: ast.expr) -> Optional[str]:
        """Base name of an attribute/subscript chain, or None."""
        while isinstance(expr, (ast.Attribute, ast.Subscript)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    def _foreign_container(self, container: ast.expr) -> Optional[str]:
        """Rendered source of ``container`` when it is *another*
        component's state (an attribute chain crossing an object
        boundary), else None.

        ``self.queue`` is own state; ``self.server.queue`` and
        ``other.queue`` are foreign; locals constructed in this function
        (fresh value objects) or aliased from ``self.*`` (own subtree,
        e.g. ``st = self._streams[sid]``) are exempt.
        """
        if self._kernel_scope:
            return None
        while isinstance(container, ast.Subscript):
            container = container.value
        if not isinstance(container, ast.Attribute):
            return None
        if container.attr in _SL007_EXEMPT_ATTRS:
            return None
        base = container.value
        while isinstance(base, (ast.Subscript, ast.Call)):
            base = base.value if isinstance(base, ast.Subscript) else base.func
        if isinstance(base, ast.Name):
            if base.id in ("self", "cls"):
                return None
            if any(base.id in s for s in self._constructed):
                return None
            return ast.unparse(container)
        if isinstance(base, ast.Attribute):
            return ast.unparse(container)
        return None

    def _check_sl007_store(self, target: ast.expr) -> None:
        if not self.sim_scope or not isinstance(target, ast.Subscript):
            return
        foreign = self._foreign_container(target.value)
        if foreign is not None:
            self._add(
                "SL007",
                target,
                f"subscript store into another component's container "
                f"`{foreign}`; route through the owner's API or a message "
                "(see repro.devtools.ownership)",
            )

    def _check_sl008(self, target: ast.expr, value: ast.expr,
                     node: ast.stmt) -> None:
        if not self.sim_scope or self._def_depth != 0:
            return
        if not isinstance(target, ast.Name) or target.id.startswith("__"):
            return
        if self._is_mutable_container(value):
            self._add(
                "SL008",
                node,
                f"module-level mutable state `{target.id}` is shared by every "
                "simulation in the process; make it immutable "
                "(tuple/frozenset/Mapping) or move it onto an instance",
            )

    def _track_alias(self, name: str, value: ast.expr) -> None:
        """Record locals that SL007 may treat as own state: freshly
        constructed objects, aliases of self's own subtree
        (``st = self._streams[k]``), and results of own accessor calls
        (``cyc = self._ensure_cycle()``, ``st = self._streams.get(k)``)."""
        if isinstance(value, ast.Call):
            fn = value.func
            ctor = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else ""
            )
            if ctor[:1].isupper() or ctor in _MUTABLE_FACTORY_NAMES:
                self._constructed[-1].add(name)
            elif self._chain_root(fn) in ("self", "cls"):
                self._constructed[-1].add(name)
        elif self._is_mutable_container(value):
            self._constructed[-1].add(name)
        elif self._chain_root(value) in ("self", "cls"):
            self._constructed[-1].add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scopes[-1][target.id] = is_set
                self._track_alias(target.id, node.value)
            elif (
                isinstance(target, ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(target.elts) == len(node.value.elts)
            ):
                # `a, b = self._units[i], self._units[j]` aliases pairwise.
                for elt, val in zip(target.elts, node.value.elts):
                    if isinstance(elt, ast.Name):
                        self._track_alias(elt.id, val)
            self._check_list_queue(target, node.value)
            self._check_sl007_store(target)
            self._check_sl008(target, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            is_set = _is_set_annotation(node.annotation) or (
                node.value is not None and self._is_set_expr(node.value)
            )
            self._scopes[-1][node.target.id] = is_set
        if node.value is not None:
            self._check_list_queue(node.target, node.value)
            self._check_sl008(node.target, node.value, node)
        self._check_sl007_store(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `s |= other` keeps (or establishes) set-ness; other ops keep state.
        if isinstance(node.target, ast.Name) and isinstance(node.op, ast.BitOr):
            if self._is_set_expr(node.value):
                self._scopes[-1][node.target.id] = True
        self._check_sl007_store(node.target)
        self.generic_visit(node)

    def _set_iter_reason(self, it: ast.expr) -> Optional[str]:
        if isinstance(it, ast.Call):
            func = it.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a freshly built {func.id}"
            if isinstance(func, ast.Attribute) and func.attr == "keys" and not it.args:
                return "dict.keys()"
        if isinstance(it, (ast.Set, ast.SetComp, ast.BinOp, ast.Name)):
            if self._is_set_expr(it):
                return "a set-typed value"
        if isinstance(it, ast.BinOp) and isinstance(
            it.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            # Set algebra directly in the iterable: even when neither
            # operand is provably set-typed, `a & b` / `a | b` in an
            # iterable position is overwhelmingly a set (or hash-ordered
            # dict-keys view) expression.  Pure-constant literal unions
            # pass, matching the literal-set carve-out above.
            def _const_set(e: ast.expr) -> bool:
                return isinstance(e, ast.Set) and all(
                    isinstance(x, ast.Constant) for x in e.elts
                )

            if not (_const_set(it.left) and _const_set(it.right)):
                op = {
                    ast.BitOr: "|",
                    ast.BitAnd: "&",
                    ast.BitXor: "^",
                    ast.Sub: "-",
                }[type(it.op)]
                return f"a set-algebra expression (`a {op} b`)"
        if isinstance(it, ast.Attribute) and self._is_set_expr(it):
            return f"set-typed attribute .{it.attr}"
        return None

    def _check_iteration(self, it: ast.expr) -> None:
        if not self.sim_scope:
            return
        reason = self._set_iter_reason(it)
        if reason is None:
            return
        if reason == "dict.keys()":
            hint = "iterate the dict directly (insertion-ordered) or sorted(...)"
        else:
            hint = "iterate sorted(...) so the schedule order is hash-independent"
        self._add("SL001", it, f"iteration over {reason}; {hint}")

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: Union[ast.ListComp, ast.SetComp,
                                               ast.DictComp, ast.GeneratorExp]) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- SL006: unbounded queues ----------------------------------------

    def _check_list_queue(self, target: ast.expr, value: ast.expr) -> None:
        """Flag ``self.xxx_queue = []`` style assignments in sim scope."""
        if not self.sim_scope:
            return
        if not isinstance(target, ast.Attribute):
            return
        if not _QUEUEISH_RE.search(target.attr):
            return
        fresh_list = (isinstance(value, ast.List) and not value.elts) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "list"
            and not value.args
        )
        if fresh_list:
            self._add(
                "SL006",
                value,
                f"queue-named attribute .{target.attr} built as an unbounded "
                "list; bound it, charge a MemoryBudget, or document the bound "
                "with an ignore comment",
            )

    def _check_deque(self, node: ast.Call) -> None:
        if not self.sim_scope:
            return
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name != "deque":
            return
        # deque(iterable, maxlen) -- bounded when maxlen is passed either way.
        if len(node.args) >= 2:
            return
        if any(kw.arg == "maxlen" for kw in node.keywords):
            return
        self._add(
            "SL006",
            node,
            "deque() without maxlen grows without bound under simulated load; "
            "pass maxlen, charge a MemoryBudget, or document the bound with "
            "an ignore comment",
        )

    # -- SL002 + SL003: call sites --------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_deque(node)
        func = node.func
        # SL007 -- mutator call on another component's container.
        if (
            self.sim_scope
            and isinstance(func, ast.Attribute)
            and func.attr in _SL007_MUTATORS
        ):
            foreign = self._foreign_container(func.value)
            if foreign is not None:
                self._add(
                    "SL007",
                    node,
                    f"mutator .{func.attr}() on another component's container "
                    f"`{foreign}`; route through the owner's API or a message "
                    "(see repro.devtools.ownership)",
                )
        # SL002 -- wall-clock reads.
        if not self.wallclock_exempt:
            if isinstance(func, ast.Name) and func.id in self._time_funcs:
                self._add(
                    "SL002",
                    node,
                    f"wall-clock read {func.id}(); simulation code must use sim.now",
                )
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in self._time_modules
                    and func.attr in _WALLCLOCK_TIME_FUNCS
                ):
                    self._add(
                        "SL002",
                        node,
                        f"wall-clock read {base.id}.{func.attr}(); "
                        "simulation code must use sim.now",
                    )
                elif func.attr in _DATETIME_FACTORIES:
                    if isinstance(base, ast.Name) and base.id in self._datetime_classes:
                        self._add(
                            "SL002",
                            node,
                            f"wall-clock read {base.id}.{func.attr}(); "
                            "simulation code must use sim.now",
                        )
                    elif (
                        isinstance(base, ast.Attribute)
                        and isinstance(base.value, ast.Name)
                        and base.value.id in self._datetime_modules
                        and base.attr in ("datetime", "date")
                    ):
                        self._add(
                            "SL002",
                            node,
                            f"wall-clock read {base.value.id}.{base.attr}."
                            f"{func.attr}(); simulation code must use sim.now",
                        )
        # SL003 -- global RNG state.
        if isinstance(func, ast.Name) and func.id in self._random_funcs:
            self._add(
                "SL003",
                node,
                f"module-level random function {func.id}(); use a seeded "
                "random.Random owned by the simulation",
            )
        elif isinstance(func, ast.Name) and func.id in self._numpy_random_funcs:
            self._add(
                "SL003",
                node,
                f"module-level numpy.random function {func.id}(); use "
                "numpy.random.default_rng(seed)",
            )
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (
                isinstance(base, ast.Name)
                and base.id in self._random_modules
                and func.attr not in _RANDOM_ALLOWED
            ):
                self._add(
                    "SL003",
                    node,
                    f"module-level {base.id}.{func.attr}() mutates global RNG "
                    "state; use a seeded random.Random instance",
                )
            elif func.attr not in _NUMPY_RANDOM_ALLOWED and (
                (
                    isinstance(base, ast.Attribute)
                    and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in self._numpy_modules
                )
                or (isinstance(base, ast.Name) and base.id in self._numpy_random_modules)
            ):
                self._add(
                    "SL003",
                    node,
                    f"global numpy.random.{func.attr}(); use "
                    "numpy.random.default_rng(seed)",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Iterable[str]] = None,
    sim_scope: Optional[bool] = None,
    wallclock_exempt: Optional[bool] = None,
) -> list[Finding]:
    """Lint a source string; ``sim_scope``/``wallclock_exempt`` override
    the path-derived profile (useful for tests)."""

    chosen = frozenset(select) if select is not None else frozenset(RULES)
    unknown = chosen - frozenset(RULES)
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    auto_sim, auto_exempt = _profile_for_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 0
        col = (exc.offset or 1) - 1
        return [Finding(path, line, col, "SL000", f"syntax error: {exc.msg}")]
    visitor = _LintVisitor(
        path,
        sim_scope=auto_sim if sim_scope is None else sim_scope,
        wallclock_exempt=auto_exempt if wallclock_exempt is None else wallclock_exempt,
        select=chosen,
        set_attrs=_collect_set_attrs(tree),
    )
    visitor.visit(tree)
    ignores = _ignores_by_line(source)
    findings = [f for f in visitor.findings if not _is_ignored(f, ignores)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: Union[str, Path], select: Optional[Iterable[str]] = None) -> list[Finding]:
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError):
        # Binary or unreadable file (e.g. a stray .py-named artifact):
        # skip rather than crash the whole lint run.
        return []
    return lint_source(source, str(p), select=select)


def _skip_path(f: Path) -> bool:
    return any(part.startswith(".") or part == "__pycache__" for part in f.parts)


def _iter_py_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            # Explicit file arguments go through the same filters as
            # directory walks: cache/hidden paths are never linted.
            if p.suffix == ".py" and not _skip_path(p):
                yield p
            continue
        for f in sorted(p.rglob("*.py")):
            if _skip_path(f):
                continue
            yield f


def lint_paths(
    paths: Sequence[Union[str, Path]], select: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""

    findings: list[Finding] = []
    for f in _iter_py_files(paths):
        findings.extend(lint_file(f, select=select))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def changed_paths(paths: Sequence[Union[str, Path]]) -> Optional[list[Path]]:
    """Files under ``paths`` changed vs the git merge-base with the
    default branch (plus working-tree and untracked changes).

    Returns None when git is unavailable or the tree is not a repo --
    the caller falls back to linting the full set.
    """
    import subprocess

    def run(*args: str) -> Optional[str]:
        try:
            r = subprocess.run(
                ["git", *args], capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return r.stdout if r.returncode == 0 else None

    top = run("rev-parse", "--show-toplevel")
    if top is None:
        return None
    root = Path(top.strip())
    base = "HEAD"
    for ref in ("origin/HEAD", "origin/main", "origin/master", "main", "master"):
        out = run("merge-base", "HEAD", ref)
        if out is not None:
            base = out.strip()
            break
    changed: set[str] = set()
    diff = run("diff", "--name-only", "--diff-filter=d", base)
    if diff is None:
        return None
    changed.update(line for line in diff.splitlines() if line)
    untracked = run("ls-files", "--others", "--exclude-standard")
    if untracked is not None:
        changed.update(line for line in untracked.splitlines() if line)

    wanted = [Path(p).resolve() for p in paths]
    out_files: list[Path] = []
    for rel in sorted(changed):
        f = (root / rel).resolve()
        if f.suffix != ".py" or not f.is_file():
            continue
        for w in wanted:
            if f == w or w in f.parents:
                out_files.append(f)
                break
    return out_files


def render_text(findings: Sequence[Finding]) -> str:
    if not findings:
        return "simlint: no findings"
    lines = [f.render() for f in findings]
    lines.append(f"simlint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    doc = {
        "version": 1,
        "counts": {k: counts[k] for k in sorted(counts)},
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(doc, indent=2, sort_keys=False)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="determinism lint for simulation code (rules SL001-SL008)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text")
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to enable (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs the git merge-base with the "
        "default branch (full tree when not in a repo)",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule}  {desc}")
        return 0
    select = (
        [r.strip().upper() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    lint_targets: Sequence[Union[str, Path]] = args.paths
    if args.changed:
        subset = changed_paths(args.paths)
        if subset is not None:
            lint_targets = subset
    try:
        findings = lint_paths(lint_targets, select=select)
    except ValueError as exc:
        parser.error(str(exc))
    print(render_json(findings) if args.format == "json" else render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
