"""Command-line interface: run simulated experiments without writing code.

Examples::

    python -m repro run --workload mpi-io-test --strategy dualpar-forced \
        --nprocs 64 --size-mb 64
    python -m repro compare --workload noncontig --nprocs 64
    python -m repro lint src
    python -m repro list-workloads
    python -m repro list-strategies

``run`` executes one job and prints its measurements plus DualPar
internals when applicable; ``compare`` runs the same workload under every
strategy and prints a comparison table; ``lint`` runs the simlint
determinism rules (see docs/static_analysis.md).  ``run``/``report``/
``compare`` accept ``--sanitize`` to enable the runtime SimSanitizer for
every simulator the command creates (including parallel workers), and
``--metrics``/``--trace-out`` to attach the observability layer and dump
a metrics snapshot / Chrome-trace JSON (see docs/observability.md).
``--faults plan.json`` replays a deterministic fault schedule against the
simulated cluster (see docs/fault_injection.md), and ``--guard`` attaches
the safety governor -- memory budgets, benefit governor, circuit breaker,
and stall watchdog (see docs/degradation.md).

The service layer (docs/service.md) adds ``serve`` (run the experiment
coordinator), ``submit`` / ``status`` (talk to one), and ``catalog``
(inspect the content-addressed result catalog on disk).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Optional

from repro.cluster import ClusterSpec, paper_spec
from repro.core.config import DualParConfig
from repro.runner import (
    ExperimentSpec,
    JobSpec,
    format_table,
    run_experiment,
    run_experiments,
)
from repro.runner.strategies import STRATEGY_NAMES
from repro.workloads import (
    Btio,
    Demo,
    DependentReads,
    Hpio,
    IorMpiIo,
    MpiIoTest,
    Noncontig,
    S3asim,
    SyntheticPattern,
    Workload,
)

__all__ = ["main", "build_workload", "WORKLOADS"]


def _mb(n: float) -> int:
    return int(n * 1024 * 1024)


#: name -> (description, builder(size_mb, op, nprocs) -> Workload)
WORKLOADS: dict[str, tuple[str, Callable[[int, str, int], Workload]]] = {
    "mpi-io-test": (
        "globally sequential 16 KB segments, frequent barriers (PVFS2 suite)",
        lambda size_mb, op, nprocs: MpiIoTest(file_size=_mb(size_mb), op=op),
    ),
    "hpio": (
        "regioned access, 32 KB regions (Northwestern/Sandia)",
        lambda size_mb, op, nprocs: Hpio(
            region_count=max(_mb(size_mb) // (32 * 1024), 1),
            region_bytes=32 * 1024,
            op=op,
        ),
    ),
    "ior-mpi-io": (
        "each rank streams its own 1/P of the file (ASCI Purple)",
        lambda size_mb, op, nprocs: IorMpiIo(file_size=_mb(size_mb), op=op),
    ),
    "noncontig": (
        "column access of a 2D array via vector datatype (ANL)",
        lambda size_mb, op, nprocs: Noncontig(
            elmtcount=256,
            n_rows=max(_mb(size_mb) // (64 * 1024), 64),
            op=op,
        ).with_ncols_hint(max(nprocs, 64)),
    ),
    "s3asim": (
        "fragmented sequence-database search, mixed read/write",
        lambda size_mb, op, nprocs: S3asim(db_bytes=_mb(size_mb)),
    ),
    "btio": (
        "NAS BT-IO checkpointing; request size shrinks with process count",
        lambda size_mb, op, nprocs: Btio(
            total_bytes=_mb(size_mb), n_steps=2, cell_scale=16384, op="W"
        ),
    ),
    "demo": (
        "the paper's Section-II motivating synthetic (16-segment vector reads)",
        lambda size_mb, op, nprocs: Demo(file_size=_mb(size_mb), nprocs_hint=nprocs),
    ),
    "dependent": (
        "Table-III adversary: addresses depend on previously read data",
        lambda size_mb, op, nprocs: DependentReads(file_size=_mb(size_mb)),
    ),
    "random": (
        "seeded random 16 KB blocks per rank (synthetic)",
        lambda size_mb, op, nprocs: SyntheticPattern(
            file_size=_mb(size_mb), pattern="random", op=op
        ),
    ),
}


def build_workload(name: str, size_mb: int, op: str, nprocs: int) -> Workload:
    """Construct a named workload scaled to size_mb/op/nprocs."""

    try:
        _, builder = WORKLOADS[name]
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; see `python -m repro list-workloads`"
        ) from None
    return builder(size_mb, op, nprocs)


def _cluster_from_args(args) -> ClusterSpec:
    return paper_spec(
        n_compute_nodes=args.compute_nodes,
        n_data_servers=args.data_servers,
        io_scheduler=args.elevator,
    )


def _dualpar_from_args(args) -> Optional[DualParConfig]:
    if args.quota_kb is None:
        return None
    return DualParConfig(quota_bytes=args.quota_kb * 1024)


def _job_rows(result) -> list[list]:
    return [
        [
            j.name,
            j.strategy,
            j.nprocs,
            j.elapsed_s,
            j.throughput_mb_s,
            f"{j.io_ratio:.0%}",
        ]
        for j in result.jobs
    ]


def _faults_from_args(args):
    """A :class:`~repro.faults.FaultPlan` loaded from ``--faults``, or None."""
    path = getattr(args, "faults", None)
    if not path:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def _guard_from_args(args):
    """A default :class:`~repro.guard.GuardConfig` when ``--guard`` was
    given, else None (guard-off runs stay bit-identical)."""
    if not getattr(args, "guard", False):
        return None
    from repro.guard import GuardConfig

    return GuardConfig()


def _print_guard_summary(result) -> None:
    guard = getattr(result, "guard", None)
    if guard is None:
        return
    summary = guard.summary()
    states = ", ".join(f"{job}={st}" for job, st in sorted(summary["states"].items()))
    print(f"\nguard: job states [{states or 'none'}]")
    for t, job, state, reason in guard.transitions:
        print(f"  t={t:10.3f}s  {job:<12}-> {state:<11}({reason})")
    b = summary["budget"]
    print(
        f"  budget: peak {b['peak_bytes'] / 1e6:.1f} MB, "
        f"shed {b['n_shed_store']} stores / {b['n_shed_plan']} planned chunks, "
        f"blocked {b['n_blocked']}, paced {b['n_paced']}"
    )
    br = summary["breaker"]
    print(f"  breaker: {br['state']} ({br['n_trips']} trips)")
    wd = summary.get("watchdog")
    if wd is not None and wd["n_reports"]:
        print(f"  watchdog: {wd['n_reports']} reports ({wd['n_deadlocks']} deadlocks)")


def _print_fault_summary(result) -> None:
    faults = getattr(result, "faults", None)
    if faults is None or not faults.log:
        return
    print(f"\nfaults injected ({len(faults.log)} events):")
    for t, kind, phase, target in faults.log:
        print(f"  t={t:10.3f}s  {phase:<7}{kind:<14}target={target}")
    if faults.n_timeouts:
        print(f"  client request timeouts: {faults.n_timeouts}")


def _observe_from_args(args):
    """An :class:`~repro.obs.Observability` when ``--metrics`` or
    ``--trace-out`` was given, else None (zero-overhead plain run)."""
    if getattr(args, "metrics", None) or getattr(args, "trace_out", None):
        from repro.obs import Observability

        return Observability()
    return None


def _export_obs(args, result) -> None:
    """Write the metrics snapshot and/or Chrome trace a command asked for."""
    obs = result.observe
    if obs is None:
        return
    from repro.obs import (
        chrome_trace_events,
        darshan_summary,
        write_chrome_trace,
        write_metrics,
    )

    if getattr(args, "metrics", None):
        write_metrics(args.metrics, result.metrics)
        print(f"metrics snapshot written to {args.metrics}")
    if getattr(args, "trace_out", None):
        events = chrome_trace_events(obs.tracer, registry_snapshot=result.metrics)
        write_chrome_trace(args.trace_out, events)
        print(
            f"trace written to {args.trace_out} "
            f"({len(events)} events; load in Perfetto / chrome://tracing)"
        )
    print()
    print(darshan_summary(result))


def _apply_sanitize(args) -> None:
    """Honour ``--sanitize`` by setting ``REPRO_SANITIZE`` for this process.

    Simulators are created deep inside the runner (and, for ``compare
    -j``, inside forked worker processes, which inherit the environment),
    so the environment variable is the one switch that reaches them all.
    """

    if getattr(args, "sanitize", False):
        os.environ["REPRO_SANITIZE"] = "1"


def cmd_run(args) -> int:
    _apply_sanitize(args)
    workload = build_workload(args.workload, args.size_mb, args.op, args.nprocs)
    result = run_experiment(
        [JobSpec(args.workload, args.nprocs, workload, strategy=args.strategy)],
        cluster_spec=_cluster_from_args(args),
        dualpar_config=_dualpar_from_args(args),
        observe=_observe_from_args(args),
        fault_plan=_faults_from_args(args),
        guard=_guard_from_args(args),
        workers=args.workers,
    )
    print(
        format_table(
            ["job", "strategy", "ranks", "time (s)", "MB/s", "I/O ratio"],
            _job_rows(result),
            title=f"{args.workload} under {args.strategy}",
            float_fmt="{:.2f}",
        )
    )
    job = result.mpi_jobs[0]
    engine = job.engine
    if hasattr(engine, "pec"):
        print(
            f"\nDualPar: {engine.pec.n_cycles} prefetch cycles, "
            f"{engine.crm.prefetched_bytes / 1e6:.1f} MB prefetched, "
            f"{engine.crm.writeback_bytes / 1e6:.1f} MB written back, "
            f"cache hits/misses {engine.n_cache_hits}/{engine.n_cache_misses}"
        )
    blk = result.cluster.data_servers[0].block_layer.stats
    print(
        f"server 0: mean elevator queue depth "
        f"{blk.mean_queue_depth:.1f}, mean disk request "
        f"{blk.mean_unit_sectors * 512 / 1024:.0f} KB"
    )
    _print_fault_summary(result)
    _print_guard_summary(result)
    _export_obs(args, result)
    return 0


def cmd_compare(args) -> int:
    _apply_sanitize(args)
    specs = [
        ExperimentSpec(
            [
                JobSpec(
                    args.workload,
                    args.nprocs,
                    build_workload(args.workload, args.size_mb, args.op, args.nprocs),
                    strategy=strategy,
                )
            ],
            cluster_spec=_cluster_from_args(args),
            dualpar_config=_dualpar_from_args(args),
            observe=bool(args.metrics),
            fault_plan=_faults_from_args(args),
            guard=_guard_from_args(args),
            workers=args.workers if args.workers is not None else 1,
            label=strategy,
        )
        for strategy in args.strategies
    ]
    results = run_experiments(specs, jobs=args.jobs, cache=not args.no_cache)
    rows = []
    for strategy, result in zip(args.strategies, results):
        j = result.jobs[0]
        rows.append([strategy, j.elapsed_s, j.throughput_mb_s])
    print(
        format_table(
            ["strategy", "time (s)", "MB/s"],
            rows,
            title=f"{args.workload}, {args.nprocs} ranks, {args.size_mb} MB",
            float_fmt="{:.2f}",
        )
    )
    if args.metrics:
        from repro.obs import merge_metric_snapshots, write_metrics

        merged = merge_metric_snapshots(
            {
                strategy: result.metrics
                for strategy, result in zip(args.strategies, results)
                if result.metrics is not None
            }
        )
        write_metrics(args.metrics, merged)
        print(f"\nper-strategy metrics written to {args.metrics}")
    if args.trace_out:
        print(
            "note: --trace-out applies to `run`/`report` only "
            "(compare cells run in worker processes)",
            file=sys.stderr,
        )
    return 0


def cmd_report(args) -> int:
    from repro.analysis import summarize

    _apply_sanitize(args)
    workload = build_workload(args.workload, args.size_mb, args.op, args.nprocs)
    result = run_experiment(
        [JobSpec(args.workload, args.nprocs, workload, strategy=args.strategy)],
        cluster_spec=_cluster_from_args(args),
        dualpar_config=_dualpar_from_args(args),
        observe=_observe_from_args(args),
        fault_plan=_faults_from_args(args),
        guard=_guard_from_args(args),
        workers=args.workers,
    )
    print(summarize(result))
    _print_fault_summary(result)
    _print_guard_summary(result)
    _export_obs(args, result)
    return 0


def cmd_lint(args) -> int:
    from repro.devtools import simlint

    lint_argv = list(args.paths) or ["src"]
    if args.format != "text":
        lint_argv += ["--format", args.format]
    if args.select:
        lint_argv += ["--select", args.select]
    if args.list_rules:
        lint_argv += ["--list-rules"]
    if args.changed:
        lint_argv += ["--changed"]
    return simlint.main(lint_argv)


def cmd_ownership(args) -> int:
    from repro.devtools import ownership

    own_argv = list(args.paths) or ["src/repro"]
    if args.format != "text":
        own_argv += ["--format", args.format]
    if args.out:
        own_argv += ["--out", args.out]
    if args.check:
        own_argv += ["--check"]
    return ownership.main(own_argv)


def cmd_pdes(args) -> int:
    """Run the sharded PFS cell; optionally verify against the serial run.

    This is the entry point the CI ``pdes-determinism`` matrix drives:
    ``repro pdes --verify`` runs the same cell serially and sharded and
    exits non-zero unless the result digests are byte-identical.
    """
    import json

    from repro.sim.pdes import CellParams, run_sharded_cell

    params = CellParams(
        n_servers=args.servers,
        n_client_nodes=args.client_nodes,
        n_ranks=args.ranks,
        file_size=args.size_mb * 1024 * 1024,
        request_bytes=args.request_kb * 1024,
        op="W" if args.op.startswith("w") else "R",
        io_scheduler=args.elevator,
    )
    workers = args.workers
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_SIM_WORKERS", "1") or "1")
        except ValueError:
            workers = 1

    runs: list[tuple[str, object]] = []
    if args.verify:
        runs.append(("serial", run_sharded_cell(params, workers=0)))
    runs.append((f"workers={workers}", run_sharded_cell(params, workers=workers)))

    if args.json:
        print(
            json.dumps(
                [
                    {
                        "label": label,
                        "digest": r.digest,
                        "events": r.events,
                        "elapsed_s": r.elapsed_s,
                        "wall_s": r.wall_s,
                        "stats": r.stats.as_dict(),
                    }
                    for label, r in runs
                ],
                indent=2,
            )
        )
    else:
        rows = [
            [
                label,
                r.digest[:16],
                r.events,
                r.elapsed_s,
                r.wall_s,
                r.stats.rounds,
                r.stats.null_messages,
                r.stats.horizon_stalls,
            ]
            for label, r in runs
        ]
        print(
            format_table(
                ["run", "digest", "events", "sim (s)", "wall (s)", "rounds", "nulls", "stalls"],
                rows,
                title=(
                    f"pdes cell: {params.n_servers} servers, "
                    f"{params.n_client_nodes} client nodes, {params.n_ranks} ranks"
                ),
                float_fmt="{:.3f}",
            )
        )

    # Keep stdout parseable under --json: status lines go to stderr.
    out = sys.stderr if args.json else sys.stdout
    final = runs[-1][1]
    if args.digest_out:
        with open(args.digest_out, "w") as f:
            f.write(final.digest + "\n")
        print(f"digest written to {args.digest_out}", file=out)
    if args.verify:
        serial = runs[0][1]
        if serial.digest != final.digest:
            print(
                f"DIGEST MISMATCH: serial {serial.digest} != "
                f"{runs[-1][0]} {final.digest}",
                file=sys.stderr,
            )
            return 1
        print(
            f"verified: sharded run bit-identical to serial ({serial.digest})",
            file=out,
        )
    return 0


def cmd_serve(args) -> int:
    """Run the experiment coordinator until SIGTERM/SIGINT, then drain.

    See docs/service.md: submissions arrive as line-JSON over TCP, are
    deduped by fingerprint, run on a local worker pool, and land in the
    content-addressed catalog with full provenance.
    """
    import asyncio
    import signal

    from repro.service import Coordinator

    async def serve_main() -> int:
        coordinator = Coordinator(
            catalog_dir=args.catalog,
            workers=args.workers,
            host=args.host,
            port=args.port,
            tenant_cap_bytes=args.tenant_cap_mb * 1024 * 1024,
            queue_cap_bytes=args.queue_cap_mb * 1024 * 1024,
            max_jobs=args.max_jobs,
            allow_chaos=args.allow_chaos,
        )
        await coordinator.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, coordinator.request_shutdown, True)
        print(
            f"coordinator listening on {coordinator.host}:{coordinator.port} "
            f"({args.workers} workers, catalog {coordinator.catalog.root})",
            flush=True,
        )
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{coordinator.port}\n")
        await coordinator.wait_stopped()
        status = coordinator.status()
        counters = status["counters"]
        print(
            f"drained: {counters['completed']} completed, "
            f"{counters['failed']} failed, "
            f"{status['catalog_entries']} catalog entries",
            flush=True,
        )
        return 0

    return asyncio.run(serve_main())


def cmd_submit(args) -> int:
    """Submit one experiment spec JSON to a running coordinator."""
    import json

    from repro.service import ExperimentSubmission, ServiceClient, ServiceError

    try:
        submission = ExperimentSubmission.load(args.spec)
    except (OSError, ValueError) as exc:
        print(f"bad submission {args.spec!r}: {exc}", file=sys.stderr)
        return 1
    if args.tenant:
        submission = ExperimentSubmission.from_dict(
            {**submission.to_dict(), "tenant": args.tenant}
        )
    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    try:
        response = client.submit(submission, wait=args.wait)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


def cmd_status(args) -> int:
    """Print a running coordinator's status as JSON."""
    import json

    from repro.service import ServiceClient, ServiceError

    try:
        status = ServiceClient(args.host, args.port).status()
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def cmd_catalog(args) -> int:
    """Inspect a result catalog on disk (no coordinator needed)."""
    import json

    from repro.service import ResultCatalog

    catalog = ResultCatalog(args.catalog)
    if args.action == "list":
        rows = []
        for record in catalog.records():
            prov = record.provenance
            sub = record.submission
            rows.append(
                [
                    record.fingerprint[:16],
                    sub.get("tenant", "?"),
                    sub.get("label", "") or "-",
                    len(sub.get("jobs", [])),
                    f"{record.result.get('makespan_s', 0.0):.3f}",
                    f"{prov.get('wall_time_s', 0.0):.2f}",
                    prov.get("attempts", "?"),
                ]
            )
        print(
            format_table(
                ["fingerprint", "tenant", "label", "jobs", "sim (s)", "wall (s)", "tries"],
                rows,
                title=f"catalog {catalog.root} ({len(rows)} records)",
            )
        )
        return 0
    # action == "show"
    if not args.fingerprint:
        print("catalog show needs a fingerprint", file=sys.stderr)
        return 1
    record = catalog.get(args.fingerprint)
    if record is None:
        # Allow the abbreviated form `repro catalog show <prefix>`.
        matches = [
            fp for fp in catalog.fingerprints() if fp.startswith(args.fingerprint)
        ]
        if len(matches) == 1:
            record = catalog.get(matches[0])
    if record is None:
        print(f"no catalog record for {args.fingerprint!r}", file=sys.stderr)
        return 1
    print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
    return 0


def cmd_list_workloads(_args) -> int:
    print(
        format_table(
            ["name", "description"],
            [[name, desc] for name, (desc, _) in WORKLOADS.items()],
            title="available workloads",
        )
    )
    return 0


def cmd_list_strategies(_args) -> int:
    descriptions = {
        "vanilla": "independent synchronous MPI-IO (Strategy 1)",
        "collective": "ROMIO-style two-phase collective I/O",
        "prefetch": "speculative pre-execution prefetching (Strategy 2)",
        "dualpar": "DualPar, mode chosen opportunistically by EMC",
        "dualpar-forced": "DualPar pinned in data-driven mode",
    }
    print(
        format_table(
            ["name", "description"],
            [[n, descriptions[n]] for n in STRATEGY_NAMES],
            title="available strategies",
        )
    )
    return 0


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", default="mpi-io-test", help="see list-workloads")
    p.add_argument("--nprocs", type=int, default=64, help="MPI ranks")
    p.add_argument("--size-mb", type=int, default=64, help="data volume (MB)")
    p.add_argument(
        "--op",
        type=str.lower,
        choices=["r", "w", "read", "write"],
        default="R",
        help="read or write (case-insensitive aliases accepted)",
    )
    p.add_argument("--compute-nodes", type=int, default=32)
    p.add_argument("--data-servers", type=int, default=9)
    p.add_argument(
        "--elevator",
        choices=["cfq", "deadline", "noop", "anticipatory"],
        default="cfq",
    )
    p.add_argument(
        "--quota-kb", type=int, default=None, help="DualPar per-process cache quota"
    )
    p.add_argument(
        "--sanitize",
        action="store_true",
        help="enable the runtime SimSanitizer (sets REPRO_SANITIZE=1)",
    )
    p.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="attach the observability layer; write a metrics-snapshot JSON",
    )
    p.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome/Perfetto trace_event JSON of the run",
    )
    p.add_argument(
        "--faults",
        metavar="PATH",
        default=None,
        help="inject the fault plan JSON deterministically (docs/fault_injection.md)",
    )
    p.add_argument(
        "--guard",
        action="store_true",
        help="attach the safety governor: budgets, benefit governor, "
        "circuit breaker, stall watchdog (docs/degradation.md)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sharded-simulation worker count (default: REPRO_SIM_WORKERS "
        "or 1; the full cluster model currently falls back to the "
        "bit-identical serial run -- see docs/parallel_des.md)",
    )


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DualPar reproduction: simulated MPI-IO experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one job under one strategy")
    _add_common(p_run)
    p_run.add_argument("--strategy", choices=STRATEGY_NAMES, default="dualpar-forced")
    p_run.set_defaults(func=cmd_run)

    p_rep = sub.add_parser("report", help="run one job and print a full analysis")
    _add_common(p_rep)
    p_rep.add_argument("--strategy", choices=STRATEGY_NAMES, default="dualpar-forced")
    p_rep.set_defaults(func=cmd_report)

    p_cmp = sub.add_parser("compare", help="same workload under several strategies")
    _add_common(p_cmp)
    p_cmp.add_argument(
        "--strategies",
        nargs="+",
        choices=STRATEGY_NAMES,
        default=["vanilla", "collective", "dualpar-forced"],
    )
    p_cmp.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the strategy fan-out (default: all CPUs)",
    )
    p_cmp.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reading .bench_cache/",
    )
    p_cmp.set_defaults(func=cmd_compare)

    p_lint = sub.add_parser(
        "lint", help="run the simlint determinism rules (SL001-SL008)"
    )
    p_lint.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories (default: src)"
    )
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument(
        "--select", default=None, help="comma-separated rule ids to enable"
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    p_lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files changed vs the git merge-base (full tree "
        "outside a repository)",
    )
    p_lint.set_defaults(func=cmd_lint)

    p_own = sub.add_parser(
        "ownership",
        help="simown state-ownership report / partition map (see "
        "docs/static_analysis.md)",
    )
    p_own.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files/directories (default: src/repro)",
    )
    p_own.add_argument("--format", choices=["text", "json"], default="text")
    p_own.add_argument(
        "--out", default=None, help="write the JSON partition map to this path"
    )
    p_own.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on unannotated shared-hazard findings",
    )
    p_own.set_defaults(func=cmd_ownership)

    p_pdes = sub.add_parser(
        "pdes",
        help="run the sharded (conservative parallel DES) PFS cell; "
        "--verify checks bit-identity against the serial run",
    )
    p_pdes.add_argument("--servers", type=int, default=4, help="data-server LPs")
    p_pdes.add_argument("--client-nodes", type=int, default=2, help="client-node LPs")
    p_pdes.add_argument("--ranks", type=int, default=4, help="MPI ranks (across nodes)")
    p_pdes.add_argument("--size-mb", type=int, default=8, help="file size (MB)")
    p_pdes.add_argument("--request-kb", type=int, default=64, help="per-call bytes (KB)")
    p_pdes.add_argument(
        "--op",
        type=str.lower,
        choices=["r", "w", "read", "write"],
        default="r",
    )
    p_pdes.add_argument(
        "--elevator",
        choices=["cfq", "deadline", "noop", "anticipatory"],
        default="cfq",
    )
    p_pdes.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: REPRO_SIM_WORKERS or 1; "
        "0 = serial reference run)",
    )
    p_pdes.add_argument(
        "--verify",
        action="store_true",
        help="also run serially and exit 1 unless digests are byte-identical",
    )
    p_pdes.add_argument("--json", action="store_true", help="machine-readable output")
    p_pdes.add_argument(
        "--digest-out",
        metavar="PATH",
        default=None,
        help="write the final run's result digest to this file",
    )
    p_pdes.set_defaults(func=cmd_pdes)

    p_srv = sub.add_parser(
        "serve",
        help="run the experiment coordinator (submissions over line-JSON "
        "TCP; results in a content-addressed catalog -- docs/service.md)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = pick a free one)"
    )
    p_srv.add_argument(
        "--workers", type=int, default=2, help="local worker processes"
    )
    p_srv.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="catalog root (default: REPRO_SERVICE_CATALOG or .service_catalog)",
    )
    p_srv.add_argument(
        "--tenant-cap-mb",
        type=int,
        default=4096,
        help="per-tenant quota on declared MB queued + running",
    )
    p_srv.add_argument(
        "--queue-cap-mb",
        type=int,
        default=16384,
        help="coordinator-wide backpressure cap on declared MB",
    )
    p_srv.add_argument(
        "--max-jobs", type=int, default=256, help="ceiling on in-flight jobs"
    )
    p_srv.add_argument(
        "--port-file",
        metavar="PATH",
        default=None,
        help="write the bound port to this file once listening",
    )
    p_srv.add_argument(
        "--allow-chaos",
        action="store_true",
        help="accept protocol-level chaos flags (crash-a-worker); test rigs only",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="submit an experiment spec JSON to a running coordinator"
    )
    p_sub.add_argument("spec", help="submission JSON file (docs/service.md)")
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, required=True)
    p_sub.add_argument(
        "--wait", action="store_true", help="block until the record is committed"
    )
    p_sub.add_argument(
        "--tenant", default=None, help="override the submission's tenant"
    )
    p_sub.add_argument(
        "--timeout", type=float, default=600.0, help="socket timeout (s)"
    )
    p_sub.set_defaults(func=cmd_submit)

    p_st = sub.add_parser("status", help="query a running coordinator's status")
    p_st.add_argument("--host", default="127.0.0.1")
    p_st.add_argument("--port", type=int, required=True)
    p_st.set_defaults(func=cmd_status)

    p_cat = sub.add_parser(
        "catalog", help="inspect an on-disk result catalog (list / show)"
    )
    p_cat.add_argument("action", choices=["list", "show"])
    p_cat.add_argument(
        "fingerprint",
        nargs="?",
        default=None,
        help="record fingerprint (or unique prefix) for `show`",
    )
    p_cat.add_argument(
        "--catalog",
        default=None,
        metavar="DIR",
        help="catalog root (default: REPRO_SERVICE_CATALOG or .service_catalog)",
    )
    p_cat.set_defaults(func=cmd_catalog)

    p_lw = sub.add_parser("list-workloads", help="show available workloads")
    p_lw.set_defaults(func=cmd_list_workloads)

    p_ls = sub.add_parser("list-strategies", help="show available strategies")
    p_ls.set_defaults(func=cmd_list_strategies)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""

    args = make_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro ... | head`
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
