"""noncontig (Argonne / Parallel I/O Benchmarking Consortium).

"If we consider the file to be a two-dimensional array, there are
[nprocs] columns ... Each process reads a column of the array, starting
at row 0 of its designated column.  In each row of a column there are
elmtcount elements of MPI_INT, so the width of a column is
elmtcount * sizeof(int).  If collective I/O is used, in each call the
total amount of data read by the processes is fixed, which is 4 MB in
our experiments."

Rank ``r``'s call ``c`` therefore reads ``rows_per_call`` segments of
``elmtcount*4`` bytes at stride ``ncols*elmtcount*4``.
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["Noncontig"]


class Noncontig(Workload):
    """ANL noncontig: each rank reads one column of a 2-D array via a
    vector datatype; collective or independent."""

    name = "noncontig"

    def __init__(
        self,
        file_name: str = "noncontig.dat",
        elmtcount: int = 128,
        n_rows: int = 4096,
        bytes_per_call: int = 4 * 1024 * 1024,
        op: str = "R",
        compute_per_call: float = 0.0,
        collective: bool = True,
    ):
        if elmtcount <= 0 or n_rows <= 0:
            raise ValueError("bad noncontig geometry")
        self.file_name = file_name
        self.elmtcount = elmtcount
        self.n_rows = n_rows
        self.bytes_per_call = bytes_per_call
        self.op = normalize_op(op)
        self.compute_per_call = compute_per_call
        self.collective = collective

    @property
    def column_width(self) -> int:
        return self.elmtcount * 4  # MPI_INT

    def file_size_for(self, size: int) -> int:
        return self.n_rows * size * self.column_width

    def files(self) -> list[FileSpec]:
        # The file must cover the widest plausible run; the runner passes
        # nprocs via validate/ops, so size the file generously here and
        # let ops() stay within n_rows * ncols.
        return [FileSpec(self.file_name, self.file_size_for(self._ncols_hint))]

    _ncols_hint: int = 64

    def with_ncols_hint(self, ncols: int) -> "Noncontig":
        self._ncols_hint = ncols
        return self

    def validate(self, size: int) -> None:
        if size > self._ncols_hint:
            raise ValueError(
                f"noncontig file sized for {self._ncols_hint} columns, got {size} ranks"
            )

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        from repro.mpi.datatypes import VectorType

        width = self.column_width
        row_bytes = size * width
        rows_per_call = max(self.bytes_per_call // (size * width), 1)
        row = 0
        while row < self.n_rows:
            take = min(rows_per_call, self.n_rows - row)
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            # The benchmark's vector-derived datatype: `take` rows of one
            # column cell, strided by the full row.
            vector = VectorType(count=take, blocklength=width, stride=row_bytes)
            yield IoOp(
                file_name=self.file_name,
                op=self.op,
                segments=tuple(vector.flatten(row * row_bytes + rank * width, 1)),
                collective=self.collective,
            )
            row += take
