"""ior-mpi-io (ASCI Purple suite, LLNL).

"Each MPI process is responsible for reading its own 1/64 of a 16 GB
file.  Each process continuously issues sequential requests, each for a
32 KB segment.  The processes' requests ... are at the same relative
offset in each process's access scope ... The program's access pattern
presented to the storage system is random."
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["IorMpiIo"]


class IorMpiIo(Workload):
    """LLNL ior-mpi-io: each rank streams its own 1/P of the file;
    random across ranks, sequential within each scope."""

    name = "ior-mpi-io"

    def __init__(
        self,
        file_name: str = "ior.dat",
        file_size: int = 128 * 1024 * 1024,
        request_bytes: int = 32 * 1024,
        op: str = "R",
        compute_per_call: float = 0.0,
        collective: bool = False,
    ):
        self.file_name = file_name
        self.file_size = file_size
        self.request_bytes = request_bytes
        self.op = normalize_op(op)
        self.compute_per_call = compute_per_call
        self.collective = collective

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def validate(self, size: int) -> None:
        scope = self.file_size // size
        if scope < self.request_bytes:
            raise ValueError("per-process scope smaller than one request")

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        scope = self.file_size // size
        base = rank * scope
        n_requests = scope // self.request_bytes
        for k in range(n_requests):
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            yield IoOp(
                file_name=self.file_name,
                op=self.op,
                segments=(Segment(base + k * self.request_bytes, self.request_bytes),),
                collective=self.collective,
            )
