"""S3asim: parallel sequence-similarity search simulation.

The benchmark fragments a sequence database; worker ranks answer queries
by scanning database fragments and writing variable-sized result records.
The paper configures 16 fragments, query/database sequence sizes between
a minimum and maximum, and scales load by query count; its requests "are
much larger than BTIO's", which is why DualPar's margin is smaller
(Fig 5).

Model: per query, each rank reads a run of sequence records (sizes drawn
deterministically from [min_seq, max_seq]) from its current fragment at a
sequentially advancing offset, computes the alignment score, and appends
a result record to the shared output file in its own result region.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload

__all__ = ["S3asim"]


class S3asim(Workload):
    """Sequence-similarity search: per query, ranks read database
    fragments and append result records; load scales with query count."""

    name = "s3asim"

    def __init__(
        self,
        db_file: str = "s3asim-db.dat",
        out_file: str = "s3asim-out.dat",
        n_fragments: int = 16,
        n_queries: int = 16,
        db_bytes: int = 64 * 1024 * 1024,
        min_seq_bytes: int = 64 * 1024,
        max_seq_bytes: int = 512 * 1024,
        result_bytes: int = 64 * 1024,
        compute_per_query: float = 0.002,
        out_region_bytes: int = 4 * 1024 * 1024,
        seed: int = 99,
    ):
        if n_fragments <= 0 or n_queries <= 0:
            raise ValueError("need positive fragments/queries")
        if not 0 < min_seq_bytes <= max_seq_bytes:
            raise ValueError("bad sequence size range")
        self.db_file = db_file
        self.out_file = out_file
        self.n_fragments = n_fragments
        self.n_queries = n_queries
        self.db_bytes = db_bytes
        self.min_seq_bytes = min_seq_bytes
        self.max_seq_bytes = max_seq_bytes
        self.result_bytes = result_bytes
        self.compute_per_query = compute_per_query
        self.out_region_bytes = out_region_bytes
        self.seed = seed
        self._max_ranks = 512

    def files(self) -> list[FileSpec]:
        return [
            FileSpec(self.db_file, self.db_bytes),
            FileSpec(self.out_file, self.out_region_bytes * self._max_ranks),
        ]

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        rng = np.random.default_rng(self.seed + rank * 7919)
        frag_bytes = self.db_bytes // self.n_fragments
        out_base = rank * self.out_region_bytes
        out_pos = 0
        read_pos = 0
        for q in range(self.n_queries):
            frag = (q * size + rank) % self.n_fragments
            frag_base = frag * frag_bytes
            # Scan a run of sequences from the fragment.
            seq_len = int(rng.integers(self.min_seq_bytes, self.max_seq_bytes + 1))
            seq_len = min(seq_len, frag_bytes)
            offset = frag_base + read_pos % max(frag_bytes - seq_len, 1)
            read_pos += seq_len
            yield IoOp(
                file_name=self.db_file,
                op="R",
                segments=(Segment(offset, seq_len),),
            )
            if self.compute_per_query > 0:
                yield ComputeOp(self.compute_per_query)
            # Append the result record.
            res = min(self.result_bytes, self.out_region_bytes - out_pos)
            if res > 0:
                yield IoOp(
                    file_name=self.out_file,
                    op="W",
                    segments=(Segment(out_base + out_pos, res),),
                )
                out_pos += res
