"""Configurable synthetic patterns (test/example building block)."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["SyntheticPattern"]


class SyntheticPattern(Workload):
    """A single-file pattern: sequential / strided / random.

    Parameters
    ----------
    pattern:
        'sequential' -- rank r reads blocks r, r+P, r+2P, ... (globally
        sequential when interleaved);
        'partitioned' -- rank r streams its own contiguous 1/P;
        'random' -- seeded random block order per rank.
    op:
        'R' or 'W'.
    compute_per_call:
        Seconds of computation between I/O calls.
    barrier_every:
        Insert a barrier after every N calls (0 = never).
    """

    def __init__(
        self,
        file_name: str = "synthetic.dat",
        file_size: int = 16 * 1024 * 1024,
        request_bytes: int = 16 * 1024,
        pattern: str = "sequential",
        op: str = "R",
        compute_per_call: float = 0.0,
        barrier_every: int = 0,
        collective: bool = False,
        seed: int = 1234,
    ):
        if pattern not in ("sequential", "partitioned", "random"):
            raise ValueError(f"unknown pattern {pattern!r}")
        if file_size % request_bytes != 0:
            raise ValueError("file_size must be a multiple of request_bytes")
        self.file_name = file_name
        self.file_size = file_size
        self.request_bytes = request_bytes
        self.pattern = pattern
        self.op = normalize_op(op)
        self.compute_per_call = compute_per_call
        self.barrier_every = barrier_every
        self.collective = collective
        self.seed = seed
        self.name = f"synthetic-{pattern}"

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def _block_order(self, rank: int, size: int) -> np.ndarray:
        n_blocks = self.file_size // self.request_bytes
        if self.pattern == "sequential":
            return np.arange(rank, n_blocks, size)
        if self.pattern == "partitioned":
            per = n_blocks // size
            return np.arange(rank * per, (rank + 1) * per)
        rng = np.random.default_rng(self.seed + rank)
        mine = np.arange(rank, n_blocks, size)
        rng.shuffle(mine)
        return mine

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        blocks = self._block_order(rank, size)
        for i, b in enumerate(blocks):
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            yield IoOp(
                file_name=self.file_name,
                op=self.op,
                segments=(Segment(int(b) * self.request_bytes, self.request_bytes),),
                collective=self.collective,
            )
            if self.barrier_every and (i + 1) % self.barrier_every == 0:
                yield BarrierOp()
