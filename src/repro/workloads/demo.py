"""The motivating synthetic program of Section II.

"In demo each process reads a number of noncontiguous data segments of a
file in each MPI-IO function call.  Specifically, we ran N = 8 processes
to read a file ... from its beginning to its end.  Each process,
identified by its rank, reads 16 data segments at offset k*N + myrank
(0 <= k < 16), respectively, in each call by using the derived Vector
datatype.  The size of the segment varies from 4 KB to 128 KB.  The
compute time in each process between consecutive I/O operations is
adjustable to generate workloads of different I/O intensity."

Per call ``c``, rank ``r`` therefore reads segments at segment-indices
``c*16*N + k*N + r`` for k in 0..15 -- collectively the calls sweep the
file front to back.
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload

__all__ = ["Demo"]


class Demo(Workload):
    """The Section-II motivating synthetic: per call, a 16-block vector
    of noncontiguous segments sweeping the file front to back."""

    name = "demo"

    def __init__(
        self,
        file_name: str = "demo.dat",
        file_size: int = 64 * 1024 * 1024,
        segment_bytes: int = 4 * 1024,
        segments_per_call: int = 16,
        compute_per_call: float = 0.0,
        nprocs_hint: int = 8,
    ):
        if file_size % segment_bytes != 0:
            raise ValueError("file_size must be a multiple of segment_bytes")
        self.file_name = file_name
        self.file_size = file_size
        self.segment_bytes = segment_bytes
        self.segments_per_call = segments_per_call
        self.compute_per_call = compute_per_call
        self.nprocs_hint = nprocs_hint

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def n_calls(self, size: int) -> int:
        total_segments = self.file_size // self.segment_bytes
        return total_segments // (self.segments_per_call * size)

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        from repro.mpi.datatypes import VectorType

        seg = self.segment_bytes
        n = self.segments_per_call
        # "by using the derived Vector datatype": per call, n blocks of
        # one segment each, strided by the process count.
        vector = VectorType(count=n, blocklength=seg, stride=size * seg)
        for c in range(self.n_calls(size)):
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            base = (c * n * size + rank) * seg
            yield IoOp(
                file_name=self.file_name,
                op="R",
                segments=tuple(vector.flatten(base, 1)),
            )
