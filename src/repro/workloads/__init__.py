"""The paper's benchmark programs as access-pattern generators.

Each workload reproduces the published access pattern of the benchmark it
stands in for (sizes are scaled down configurably -- the simulation's
event count, not the pattern, limits scale; DESIGN.md documents scaling):

- :class:`MpiIoTest` -- PVFS2's ``mpi-io-test``: globally sequential
  16 KB segments interleaved across ranks, frequent barriers.
- :class:`Hpio` -- Northwestern/Sandia ``hpio``: regioned access with
  configurable count/spacing/size.
- :class:`IorMpiIo` -- LLNL ``ior-mpi-io``: each rank streams its own
  1/P of the file; random across ranks, sequential within.
- :class:`Noncontig` -- ANL ``noncontig``: column access of a 2D array
  with a vector datatype; collective or independent.
- :class:`S3asim` -- sequence-similarity search: fragmented DB reads,
  result writes, query-count driven.
- :class:`Btio` -- NAS BT-IO: tiny per-rank cells whose size shrinks with
  process count, written per timestep (collective or independent).
- :class:`Demo` -- the motivating synthetic program of Section II.
- :class:`DependentReads` -- the Table-III adversary whose addresses
  depend on previously read data (every prefetch is wrong).
- :class:`SyntheticPattern` -- building block for tests/examples.
"""

from repro.workloads.base import FileSpec, Workload, normalize_op
from repro.workloads.btio import Btio
from repro.workloads.demo import Demo
from repro.workloads.dependent import DependentReads
from repro.workloads.hpio import Hpio
from repro.workloads.ior import IorMpiIo
from repro.workloads.mpi_io_test import MpiIoTest
from repro.workloads.noncontig import Noncontig
from repro.workloads.s3asim import S3asim
from repro.workloads.synthetic import SyntheticPattern

__all__ = [
    "Btio",
    "Demo",
    "DependentReads",
    "FileSpec",
    "Hpio",
    "IorMpiIo",
    "MpiIoTest",
    "Noncontig",
    "S3asim",
    "SyntheticPattern",
    "Workload",
    "normalize_op",
]
