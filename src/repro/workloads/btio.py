"""NAS BT-IO: periodic checkpointing of a block-tridiagonal solution.

BT's multi-partition decomposition scatters each rank's cells through the
solution file: per checkpoint a rank writes many tiny noncontiguous
pieces whose size *shrinks* as the process count grows (the paper reports
4-byte requests at 256 processes -- "too small for the disks to be
efficiently used").  With collective I/O each checkpoint moves a fixed
total volume; without it the tiny pieces go to the servers directly.

Model: a solution array of ``total_bytes`` is written over ``n_steps``
checkpoints; at each checkpoint rank ``r`` writes its cells -- segments
of ``cell_bytes(P) = cell_scale // P`` bytes at stride ``P * cell`` --
then optionally reads the file back at the end (BT-IO's verification
phase).
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["Btio"]


class Btio(Workload):
    """NAS BT-IO checkpointing: tiny scattered per-rank cells whose size
    shrinks with the process count; written per timestep."""

    name = "btio"

    def __init__(
        self,
        file_name: str = "btio.dat",
        total_bytes: int = 32 * 1024 * 1024,
        n_steps: int = 4,
        cell_scale: int = 4096,
        op: str = "W",
        compute_per_step: float = 0.001,
        collective: bool = False,
        segments_per_call: int = 64,
        verify_read: bool = False,
    ):
        if total_bytes % n_steps != 0:
            raise ValueError("total_bytes must divide evenly into steps")
        self.file_name = file_name
        self.total_bytes = total_bytes
        self.n_steps = n_steps
        self.cell_scale = cell_scale
        self.op = normalize_op(op)
        self.compute_per_step = compute_per_step
        self.collective = collective
        self.segments_per_call = segments_per_call
        self.verify_read = verify_read

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.total_bytes)]

    def cell_bytes(self, size: int) -> int:
        return max(self.cell_scale // size, 4)

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        cell = self.cell_bytes(size)
        step_bytes = self.total_bytes // self.n_steps
        stride = size * cell
        cells_per_rank_step = step_bytes // stride
        for step in range(self.n_steps):
            if self.compute_per_step > 0:
                yield ComputeOp(self.compute_per_step)
            base = step * step_bytes + rank * cell
            # Emit the step's cells in calls of segments_per_call pieces
            # (one MPI-IO call writes one derived-datatype view slice).
            for start in range(0, cells_per_rank_step, self.segments_per_call):
                take = min(self.segments_per_call, cells_per_rank_step - start)
                segments = tuple(
                    Segment(base + (start + i) * stride, cell) for i in range(take)
                )
                yield IoOp(
                    file_name=self.file_name,
                    op=self.op,
                    segments=segments,
                    collective=self.collective,
                )
        if self.verify_read:
            cell = self.cell_bytes(size)
            for start in range(0, cells_per_rank_step, self.segments_per_call):
                take = min(self.segments_per_call, cells_per_rank_step - start)
                segments = tuple(
                    Segment(rank * cell + (start + i) * stride, cell)
                    for i in range(take)
                )
                yield IoOp(
                    file_name=self.file_name,
                    op="R",
                    segments=segments,
                    collective=self.collective,
                )
