"""Workload protocol."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.mpi.ops import Op

__all__ = ["FileSpec", "Workload"]


@dataclass(frozen=True)
class FileSpec:
    """A file the workload needs pre-created."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("file size must be positive")


class Workload(ABC):
    """An MPI program described by its per-rank operation stream.

    Implementations must be *replayable*: ``ops(rank, size)`` may be
    called any number of times and must return an identical stream --
    DualPar's ghost pre-execution depends on it (as the real DualPar
    depends on fork semantics).
    """

    name: str = "workload"

    @abstractmethod
    def ops(self, rank: int, size: int) -> Iterator[Op]:
        """The operation stream of ``rank`` in a ``size``-process run."""

    @abstractmethod
    def files(self) -> list[FileSpec]:
        """Files to create before the job starts."""

    def validate(self, size: int) -> None:
        """Optional sanity check of (workload, nprocs) pairing."""
