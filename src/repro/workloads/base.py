"""Workload protocol."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

from repro.mpi.ops import Op

__all__ = ["FileSpec", "Workload", "normalize_op"]


def normalize_op(op: str) -> str:
    """Canonicalise an I/O direction to ``'R'`` or ``'W'``.

    Workload constructors accept case-insensitive aliases (``"r"``,
    ``"read"``, ``"w"``, ``"write"``); the rest of the stack only ever
    sees the canonical single-letter form.
    """
    if isinstance(op, str):
        low = op.strip().lower()
        if low in ("r", "read"):
            return "R"
        if low in ("w", "write"):
            return "W"
    raise ValueError(f"op must be 'R'/'read' or 'W'/'write', got {op!r}")


@dataclass(frozen=True)
class FileSpec:
    """A file the workload needs pre-created."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("file size must be positive")


class Workload(ABC):
    """An MPI program described by its per-rank operation stream.

    Implementations must be *replayable*: ``ops(rank, size)`` may be
    called any number of times and must return an identical stream --
    DualPar's ghost pre-execution depends on it (as the real DualPar
    depends on fork semantics).
    """

    name: str = "workload"

    @abstractmethod
    def ops(self, rank: int, size: int) -> Iterator[Op]:
        """The operation stream of ``rank`` in a ``size``-process run."""

    @abstractmethod
    def files(self) -> list[FileSpec]:
        """Files to create before the job starts."""

    def validate(self, size: int) -> None:
        """Optional sanity check of (workload, nprocs) pairing."""
