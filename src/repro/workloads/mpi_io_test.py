"""mpi-io-test (PVFS2 software package).

"Process p_i accesses the (i + 64j)-th 16 KB segment at call j (j >= 0)
... The benchmark generates a fully sequential access pattern."  A
barrier routine is called frequently during execution (SV-B explains its
cost); we place one after every call by default.
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import BarrierOp, ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["MpiIoTest"]


class MpiIoTest(Workload):
    """PVFS2's mpi-io-test: globally sequential fixed-size segments,
    rank-interleaved, with frequent barriers."""

    name = "mpi-io-test"

    def __init__(
        self,
        file_name: str = "mpi-io-test.dat",
        file_size: int = 64 * 1024 * 1024,
        request_bytes: int = 16 * 1024,
        op: str = "R",
        barrier_every: int = 1,
        compute_per_call: float = 0.0,
    ):
        if file_size % request_bytes != 0:
            raise ValueError("file_size must be a multiple of request_bytes")
        self.file_name = file_name
        self.file_size = file_size
        self.request_bytes = request_bytes
        self.op = normalize_op(op)
        self.barrier_every = barrier_every
        self.compute_per_call = compute_per_call

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        n_segments = self.file_size // self.request_bytes
        calls = 0
        for j in range(rank, n_segments, size):
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            yield IoOp(
                file_name=self.file_name,
                op=self.op,
                segments=(Segment(j * self.request_bytes, self.request_bytes),),
            )
            calls += 1
            if self.barrier_every and calls % self.barrier_every == 0:
                yield BarrierOp()
