"""The Table-III adversary: reads whose addresses depend on read data.

"we wrote an MPI program that reads 2GB data, and the requested data
addresses depend on the data read in the previous I/O call.  Because of
the existence of dependency, all data loaded into the cache are
mis-prefetched ones."

The *actual* addresses follow a pointer-chasing permutation a ghost
cannot know; the *predicted* addresses (what a pre-execution records,
since the dependency data is not yet available) are simply the next
sequential block -- always wrong by construction.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload

__all__ = ["DependentReads"]


class DependentReads(Workload):
    """Table-III adversary: actual addresses follow an unpredictable
    pointer chain; predictions always resolve into never-read data."""

    name = "dependent-reads"

    def __init__(
        self,
        file_name: str = "dependent.dat",
        file_size: int = 32 * 1024 * 1024,
        request_bytes: int = 64 * 1024,
        compute_per_call: float = 0.0,
        seed: int = 7,
    ):
        if file_size % request_bytes != 0:
            raise ValueError("file_size must be a multiple of request_bytes")
        self.file_name = file_name
        self.file_size = file_size
        self.request_bytes = request_bytes
        self.compute_per_call = compute_per_call
        self.seed = seed

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        # The data actually read lives in the first half of the file; the
        # stale pointer values a pre-execution sees always resolve into the
        # second half, so no prefetched chunk is ever consumed.
        n_blocks = self.file_size // self.request_bytes
        half = n_blocks // 2
        mine = np.arange(rank, half, size)
        rng = np.random.default_rng(self.seed + rank)
        rng.shuffle(mine)  # the pointer chain: unpredictable order
        for b in mine:
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            actual = Segment(int(b) * self.request_bytes, self.request_bytes)
            predicted = Segment((int(b) + half) * self.request_bytes, self.request_bytes)
            yield IoOp(
                file_name=self.file_name,
                op="R",
                segments=(actual,),
                predicted_segments=(predicted,),
            )
