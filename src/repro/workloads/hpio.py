"""hpio (Northwestern University / Sandia National Laboratories).

Systematically evaluates I/O under regioned patterns controlled by
*region count*, *region spacing*, and *region size*.  Rank ``r`` accesses
region indices ``r, r+P, r+2P, ...``; region ``g`` starts at
``g * (region_size + spacing)``.  Spacing 0 reproduces the contiguous
configuration the paper uses (SV-A: "We use the benchmark to generate
contiguous data accesses"); non-zero spacing produces the noncontiguous
family.
"""

from __future__ import annotations

from typing import Iterator

from repro.mpi.ops import ComputeOp, IoOp, Op, Segment
from repro.workloads.base import FileSpec, Workload, normalize_op

__all__ = ["Hpio"]


class Hpio(Workload):
    """Northwestern/Sandia hpio: regioned access controlled by region
    count, size, and spacing."""

    name = "hpio"

    def __init__(
        self,
        file_name: str = "hpio.dat",
        region_count: int = 4096,
        region_bytes: int = 32 * 1024,
        region_spacing: int = 0,
        op: str = "R",
        compute_per_call: float = 0.0,
        collective: bool = False,
    ):
        if region_count <= 0 or region_bytes <= 0 or region_spacing < 0:
            raise ValueError("bad hpio geometry")
        self.file_name = file_name
        self.region_count = region_count
        self.region_bytes = region_bytes
        self.region_spacing = region_spacing
        self.op = normalize_op(op)
        self.compute_per_call = compute_per_call
        self.collective = collective

    @property
    def file_size(self) -> int:
        pitch = self.region_bytes + self.region_spacing
        # Last region needs no trailing spacing.
        return self.region_count * pitch - self.region_spacing

    def files(self) -> list[FileSpec]:
        return [FileSpec(self.file_name, self.file_size)]

    def ops(self, rank: int, size: int) -> Iterator[Op]:
        pitch = self.region_bytes + self.region_spacing
        for g in range(rank, self.region_count, size):
            if self.compute_per_call > 0:
                yield ComputeOp(self.compute_per_call)
            yield IoOp(
                file_name=self.file_name,
                op=self.op,
                segments=(Segment(g * pitch, self.region_bytes),),
                collective=self.collective,
            )
