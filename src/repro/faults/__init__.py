"""Deterministic, sim-time-scheduled fault injection.

See ``docs/fault_injection.md`` for the fault taxonomy, the plan JSON
schema, and the determinism guarantees.
"""

from repro.faults.health import ServerHealth
from repro.faults.injector import FaultError, FaultInjector, NetFault, RequestTimeout
from repro.faults.plan import FAULT_KINDS, DiskFault, FaultEvent, FaultPlan, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "DiskFault",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "NetFault",
    "RequestTimeout",
    "RetryPolicy",
    "ServerHealth",
]
