"""Metadata-server-driven data-server health state.

PVFS2 clients learn which servers exist from the metadata server; here
the same channel carries liveness.  The injector marks servers
``up``/``slow``/``down`` as it applies and reverts faults, the
:class:`~repro.pfs.metaserver.MetadataServer` exposes the map (its
``health`` attribute), and fault-aware PFS clients consult it before
dispatching: a request to a ``down`` server parks on that server's
recovery event instead of burning its retry budget against a black hole.

State changes are instantaneous metadata (no simulated RPC) -- the paper
stack already models metadata traffic separately and the interesting
dynamics live in the data path.  When observability is on, each server
publishes a ``faults.ds{i}.health`` gauge (1 up / 0.5 slow / 0 down).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.core import Event, Simulator

__all__ = ["ServerHealth"]

_GAUGE_VALUE: Mapping[str, float] = MappingProxyType(
    {"up": 1.0, "slow": 0.5, "down": 0.0}
)


class ServerHealth:
    """Per-data-server liveness map with recovery events."""

    UP = "up"
    SLOW = "slow"
    DOWN = "down"

    def __init__(self, sim: "Simulator", n_servers: int) -> None:
        self.sim = sim
        self.n_servers = n_servers
        self._state = ["up"] * n_servers
        #: server index -> event fired on the next down->up transition.
        self._recovery: dict[int, "Event"] = {}
        #: (sim_time, server, new_state) history, always recorded.
        self.transitions: list[tuple[float, int, str]] = []
        if sim.obs.enabled:
            reg = sim.obs.registry
            self._gauges: Optional[list] = [
                reg.gauge(f"faults.ds{i}.health") for i in range(n_servers)
            ]
            for g in self._gauges:
                g.set(1.0)
        else:
            self._gauges = None

    def state_of(self, server: int) -> str:
        return self._state[server]

    def is_up(self, server: int) -> bool:
        """True unless the server is down (slow still serves requests)."""
        return self._state[server] != "down"

    def live_servers(self) -> list[int]:
        """Indices of servers currently accepting requests, ascending."""
        return [i for i in range(self.n_servers) if self._state[i] != "down"]

    def mark(self, server: int, state: str) -> None:
        """Record a state transition, firing recovery waiters on down->up."""
        if state not in _GAUGE_VALUE:
            raise ValueError(f"unknown health state {state!r}")
        old = self._state[server]
        if old == state:
            return
        self._state[server] = state
        self.transitions.append((self.sim.now, server, state))
        if self._gauges is not None:
            self._gauges[server].set(_GAUGE_VALUE[state])
        if old == "down":
            ev = self._recovery.pop(server, None)
            if ev is not None:
                ev.succeed(self.sim.now)

    def recovery_event(self, server: int) -> "Event":
        """An event that fires when ``server`` next returns from down.

        Already-up servers yield an immediately triggered event, so
        callers can wait unconditionally.
        """
        ev = self._recovery.get(server)
        if ev is None:
            ev = self.sim.event()
            if self._state[server] != "down":
                ev.succeed(self.sim.now)
            else:
                self._recovery[server] = ev
        return ev
