"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is the complete description of everything that will
go wrong in a run: a seed (the only entropy source the injector uses), a
tuple of :class:`FaultEvent` entries pinned to simulated time, and the
:class:`RetryPolicy` the PFS clients apply while riding the faults out.
Plans are frozen dataclasses with a JSON round-trip, so they fingerprint
into the bench cache exactly like every other piece of an
``ExperimentSpec`` and two runs of the same plan are bit-identical.

Fault taxonomy (see ``docs/fault_injection.md`` for semantics):

- ``disk_failslow``   -- scale a disk's transfer time / add seek penalty;
- ``server_crash``    -- a data server drops requests and loses RAM state;
- ``mirror_fail``     -- fail one RAID-1 member, rebuild on repair;
- ``net_degrade``     -- extra Ethernet latency plus seeded jitter;
- ``net_partition``   -- transit to/from a node set blocks until healed;
- ``cache_evict``     -- Memcached nodes leave (and rejoin) the ring.

Windowed events (``until_s`` set) revert automatically; ``until_s=None``
means the fault is permanent for the run -- except ``net_partition``,
which *requires* a heal time because transfers crossing the cut wait on
the heal event and an unhealed partition would hang any non-retried
sender (e.g. compute-node cache traffic) forever.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Optional

__all__ = ["FAULT_KINDS", "DiskFault", "FaultEvent", "FaultPlan", "RetryPolicy"]

#: Every fault kind the injector knows how to apply.
FAULT_KINDS: tuple[str, ...] = (
    "disk_failslow",
    "server_crash",
    "mirror_fail",
    "net_degrade",
    "net_partition",
    "cache_evict",
)


@dataclass
class DiskFault:
    """Fail-slow state installed on a :class:`~repro.disk.drive.DiskDrive`.

    The drive only duck-types this (``drive.fault`` is ``None`` nominally
    and anything with these two attributes when degraded), keeping
    ``repro.disk`` free of a dependency on the faults package.
    """

    #: Media transfer takes this many times longer (>= 1).
    transfer_factor: float = 4.0
    #: Flat penalty added to every non-sequential positioning, modelling
    #: retried seeks / head re-calibration on a sick actuator.
    extra_seek_s: float = 0.0


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side timeout/retry knobs used while a plan is installed.

    The per-request timeout is *size-aware*: a fixed small timeout would
    declare large striped batches dead while the server is still happily
    streaming them, and every false timeout doubles the offered load
    (the server keeps servicing the abandoned attempt while the client
    re-sends it) -- congestion collapse in miniature.  ``timeout_for``
    therefore floors the implied transfer rate via ``timeout_per_byte_s``.
    """

    #: Base per-request timeout, independent of payload size.
    base_timeout_s: float = 2.0
    #: Additional timeout per payload byte (1e-6 floors the implied
    #: server rate at ~1 MB/s before a retry fires).
    timeout_per_byte_s: float = 1e-6
    #: Attempts beyond the first before the request errors out.
    max_retries: int = 12
    #: First backoff sleep; doubles (by default) each retry.
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    #: Backoff ceiling so recovery is noticed promptly.
    backoff_max_s: float = 2.0
    #: ``"none"`` (default: deterministic exponential backoff, replay-
    #: compatible with pre-jitter plans) or ``"full"`` (AWS-style full
    #: jitter: sleep ~ U[0, capped exponential), drawn from the plan RNG,
    #: so synchronized retries don't stampede a recovering server).
    backoff_jitter: str = "none"

    def __post_init__(self) -> None:
        if self.base_timeout_s <= 0:
            raise ValueError("base_timeout_s must be > 0")
        if self.timeout_per_byte_s < 0:
            raise ValueError("timeout_per_byte_s must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_jitter not in ("none", "full"):
            raise ValueError(f"bad backoff_jitter {self.backoff_jitter!r}")

    def timeout_for(self, nbytes: int) -> float:
        """Request timeout for a payload of ``nbytes``."""
        return self.base_timeout_s + nbytes * self.timeout_per_byte_s

    def backoff_s(self, attempt: int, rng: Optional["random.Random"] = None) -> float:
        """Sleep before retry number ``attempt`` (1-based).

        With ``backoff_jitter="full"`` and an ``rng`` (the injector's
        plan-seeded ``random.Random``), the sleep is uniform in [0, the
        capped exponential).  The RNG is only consumed in that mode, so
        unjittered policies replay identically with or without it.
        """
        ceiling = min(
            self.backoff_base_s * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max_s,
        )
        if self.backoff_jitter == "full" and rng is not None:
            return rng.random() * ceiling
        return ceiling


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: applied at ``at_s``, reverted at ``until_s``
    (or never, when ``until_s`` is None)."""

    kind: str
    at_s: float
    until_s: Optional[float] = None
    #: Kind-specific index: data-server index for ``disk_failslow`` /
    #: ``server_crash`` / ``mirror_fail``, unused for the network kinds,
    #: the compute-node id for ``cache_evict`` when ``nodes`` is empty.
    target: int = 0

    # -- disk_failslow ---------------------------------------------------
    transfer_factor: float = 4.0
    extra_seek_s: float = 0.0

    # -- mirror_fail -----------------------------------------------------
    #: RAID-1 member index to fail.
    member: int = 1
    #: Rebuild pacing on repair (md's speed_limit ceiling).
    rebuild_rate_bytes_s: float = 40e6
    #: Cap on bytes resynced (None = whole member); models bitmap-based
    #: resync of the dirty region on small simulated disks.
    rebuild_bytes: Optional[int] = None

    # -- net_degrade -----------------------------------------------------
    extra_latency_s: float = 0.0
    #: Uniform [0, jitter_s) seeded jitter added per transfer.
    jitter_s: float = 0.0

    # -- net_partition / cache_evict -------------------------------------
    #: Node ids on the far side of the cut / cache nodes to evict.
    nodes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (know {FAULT_KINDS})")
        if self.at_s < 0:
            raise ValueError("at_s must be >= 0")
        if self.until_s is not None and self.until_s <= self.at_s:
            raise ValueError("until_s must be > at_s")
        if self.target < 0:
            raise ValueError("target must be >= 0")
        if self.kind == "disk_failslow":
            if self.transfer_factor < 1:
                raise ValueError("transfer_factor must be >= 1 (fail-SLOW)")
            if self.extra_seek_s < 0:
                raise ValueError("extra_seek_s must be >= 0")
        elif self.kind == "mirror_fail":
            if self.member < 0:
                raise ValueError("member must be >= 0")
            if self.rebuild_rate_bytes_s <= 0:
                raise ValueError("rebuild_rate_bytes_s must be > 0")
            if self.rebuild_bytes is not None and self.rebuild_bytes <= 0:
                raise ValueError("rebuild_bytes must be > 0")
        elif self.kind == "net_degrade":
            if self.extra_latency_s < 0 or self.jitter_s < 0:
                raise ValueError("latency/jitter must be >= 0")
            if self.extra_latency_s == 0 and self.jitter_s == 0:
                raise ValueError("net_degrade needs extra_latency_s or jitter_s > 0")
        elif self.kind == "net_partition":
            if not self.nodes:
                raise ValueError("net_partition needs a non-empty node set")
            if self.until_s is None:
                raise ValueError(
                    "net_partition requires until_s: senders block on the heal "
                    "event, so an unhealed cut would hang the run"
                )

    @property
    def evicted_nodes(self) -> tuple[int, ...]:
        """Cache nodes a ``cache_evict`` event removes."""
        return self.nodes if self.nodes else (self.target,)


_EVENT_FIELDS = frozenset(f.name for f in fields(FaultEvent))
_POLICY_FIELDS = frozenset(f.name for f in fields(RetryPolicy))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault events plus the client retry policy."""

    seed: int = 0
    events: tuple[FaultEvent, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "events": [asdict(ev) for ev in self.events],
            "retry": asdict(self.retry),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        events = []
        for raw in d.get("events", ()):
            unknown = set(raw) - _EVENT_FIELDS
            if unknown:
                raise ValueError(f"unknown FaultEvent fields: {sorted(unknown)}")
            ev = dict(raw)
            if "nodes" in ev:
                ev["nodes"] = tuple(ev["nodes"])
            events.append(FaultEvent(**ev))
        raw_retry = d.get("retry", {})
        unknown = set(raw_retry) - _POLICY_FIELDS
        if unknown:
            raise ValueError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        return cls(
            seed=int(d.get("seed", 0)),
            events=tuple(events),
            retry=RetryPolicy(**raw_retry),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: Any) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def dump(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
