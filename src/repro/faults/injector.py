"""The fault-injector daemon: applies a :class:`FaultPlan` to a cluster.

One daemon process walks the plan's events in ``(at_s, index)`` order and
flips the matching component state on apply/revert:

- ``disk_failslow``  -- installs a :class:`~repro.faults.plan.DiskFault`
  on the server's drive (every member, for RAID devices);
- ``server_crash``   -- :meth:`DataServer.crash` (drops in-flight work,
  loses page cache and dirty writeback state) and later
  :meth:`DataServer.recover`;
- ``mirror_fail``    -- fails one RAID-1 member; on revert the member is
  repaired and a paced rebuild copies from a surviving mirror;
- ``net_degrade``    -- extra Ethernet latency plus seeded jitter on
  every non-loopback transfer;
- ``net_partition``  -- transfers crossing the cut wait on the heal
  event (transit stalls rather than erroring, like a pulled cable);
- ``cache_evict``    -- Memcached nodes leave the ring (clean chunks
  evicted, dirty chunk ownership migrated) and later rejoin.

Determinism: the injector owns a private ``random.Random(plan.seed)``
(used only for network jitter), every schedule entry is pinned to sim
time, and ``install()`` is a complete no-op for an empty plan -- so a
run without faults is bit-identical to a run without the subsystem.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Optional

from repro.faults.health import ServerHealth
from repro.faults.plan import DiskFault, FaultEvent, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.builder import Cluster

__all__ = ["FaultError", "FaultInjector", "NetFault", "RequestTimeout"]


class FaultError(Exception):
    """A fault plan could not be applied to this cluster."""


class RequestTimeout(FaultError):
    """A PFS request exhausted its retry budget."""


class NetFault:
    """Mutable network-degradation state consulted by ``Network.transfer``.

    ``gate`` runs at the head of every non-loopback transfer: it first
    waits out any partition separating the endpoints, then serves the
    configured extra latency and seeded jitter.  Nominally the network's
    ``fault`` attribute is ``None`` and none of this code runs.
    """

    def __init__(self, sim: Any, rng: random.Random) -> None:
        self.sim = sim
        self._rng = rng
        self.extra_latency_s = 0.0
        self.jitter_s = 0.0
        #: Node ids on the far side of the current cut (empty = none).
        self._cut: frozenset[int] = frozenset()
        self._heal_event: Optional[Any] = None
        self.n_delayed = 0
        self.n_blocked = 0

    def partition(self, nodes: tuple[int, ...]) -> None:
        if self._cut:
            raise FaultError("a partition is already in effect")
        self._cut = frozenset(nodes)
        self._heal_event = self.sim.event()

    def heal(self) -> None:
        self._cut = frozenset()
        ev, self._heal_event = self._heal_event, None
        if ev is not None:
            ev.succeed(self.sim.now)

    def crosses_cut(self, src: int, dst: int) -> bool:
        return (src in self._cut) != (dst in self._cut)

    def gate(self, src: int, dst: int) -> Any:
        """Generator delegated to by ``Network.transfer``."""
        while self.crosses_cut(src, dst):
            self.n_blocked += 1
            yield self._heal_event
        delay = self.extra_latency_s
        if self.jitter_s > 0.0:
            delay += self._rng.random() * self.jitter_s
        if delay > 0.0:
            self.n_delayed += 1
            yield self.sim.timeout(delay)


class FaultInjector:
    """Drives a :class:`FaultPlan` against a built cluster."""

    def __init__(
        self,
        cluster: "Cluster",
        plan: FaultPlan,
        runtime: Any = None,
        dualpar: Any = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.runtime = runtime
        self.dualpar = dualpar
        self.sim = cluster.sim
        self.rng = random.Random(plan.seed)
        self.retry = plan.retry
        self.health: Optional[ServerHealth] = None
        self.net_fault: Optional[NetFault] = None
        #: (sim_time, kind, phase, target) for every applied transition.
        self.log: list[tuple[float, str, str, int]] = []
        self.n_timeouts = 0
        self._installed = False
        self._req_counter = 0
        self._evicted: set[int] = set()
        obs = self.sim.obs
        if obs.enabled:
            self._event_counter = obs.registry.counter("faults.events")
            self._event_log = obs.registry.event_log(
                "faults.log", fields=("t", "kind", "phase", "target")
            )
            self._tracer = obs.tracer
        else:
            self._event_counter = None
            self._event_log = None
            self._tracer = None
        #: event index -> open async span for windowed faults.
        self._spans: dict[int, Any] = {}
        self._validate()

    # -- plan validation against the actual cluster ----------------------

    def _validate(self) -> None:
        spec = self.cluster.spec
        n_ds = len(self.cluster.data_servers)
        for ev in self.plan.events:
            if ev.kind in ("disk_failslow", "server_crash", "mirror_fail"):
                if ev.target >= n_ds:
                    raise FaultError(
                        f"{ev.kind} targets server {ev.target} but the cluster "
                        f"has {n_ds} data servers"
                    )
            if ev.kind == "mirror_fail":
                device = self.cluster.data_servers[ev.target].device
                if getattr(device, "level", None) != 1:
                    raise FaultError(
                        f"mirror_fail on server {ev.target} needs a RAID-1 "
                        f"device (have {type(device).__name__})"
                    )
                if ev.member >= len(device.members):
                    raise FaultError(
                        f"mirror_fail member {ev.member} out of range for "
                        f"{len(device.members)}-way mirror"
                    )
            if ev.kind == "cache_evict":
                for node in ev.evicted_nodes:
                    if node >= spec.n_compute_nodes:
                        raise FaultError(
                            f"cache_evict node {node} is not a compute node "
                            f"(cluster has {spec.n_compute_nodes})"
                        )
            if ev.kind == "net_partition":
                for node in ev.nodes:
                    if node >= spec.n_nodes:
                        raise FaultError(
                            f"net_partition node {node} out of range for "
                            f"{spec.n_nodes}-node cluster"
                        )

    # -- request ids (exactly-once write accounting) ---------------------

    def next_request_id(self) -> int:
        self._req_counter += 1
        return self._req_counter

    def record_timeout(self, server_index: int) -> None:
        self.n_timeouts += 1
        if self._tracer is not None:
            self._tracer.instant(
                "faults.timeout", track="faults", cat="fault", server=server_index
            )

    def live_compute_nodes(self) -> frozenset[int]:
        """Compute nodes currently holding cache ring membership."""
        spec = self.cluster.spec
        return frozenset(
            spec.compute_node_id(i)
            for i in range(spec.n_compute_nodes)
            if spec.compute_node_id(i) not in self._evicted
        )

    # -- installation -----------------------------------------------------

    def install(self) -> None:
        """Arm the injector.  A plan with no events installs nothing at
        all, keeping nominal runs bit-identical to pre-fault builds."""
        if self._installed:
            raise FaultError("injector already installed")
        self._installed = True
        if not self.plan.events:
            return
        self.health = ServerHealth(self.sim, len(self.cluster.data_servers))
        self.cluster.metadata_server.health = self.health
        self.net_fault = NetFault(self.sim, self.rng)
        self.cluster.network.fault = self.net_fault
        for client in self.cluster.clients:
            client.faults = self
        for ds in self.cluster.data_servers:
            ds.enable_fault_tracking()
        if self.dualpar is not None:
            self.dualpar.faults = self
            self.dualpar.health = self.health
        self.sim.process(self._run(), name="fault-injector", daemon=True)

    def _run(self) -> Any:
        # Phase order breaks same-time ties: reverts land before applies
        # so a back-to-back window sequence on one target is well formed.
        schedule: list[tuple[float, int, int, str, FaultEvent]] = []
        for i, ev in enumerate(self.plan.events):
            schedule.append((ev.at_s, 1, i, "apply", ev))
            if ev.until_s is not None:
                schedule.append((ev.until_s, 0, i, "revert", ev))
        schedule.sort(key=lambda e: (e[0], e[1], e[2]))
        sim = self.sim
        for at_s, _order, idx, phase, ev in schedule:
            if at_s > sim.now:
                yield sim.timeout(at_s - sim.now)
            self._record(ev, phase, idx)
            self._dispatch(ev, phase)

    def _record(self, ev: FaultEvent, phase: str, idx: int) -> None:
        now = self.sim.now
        self.log.append((now, ev.kind, phase, ev.target))
        if self._event_counter is not None:
            self._event_counter.inc()
            self._event_log.append((now, ev.kind, phase, ev.target))
        if self._tracer is not None:
            if phase == "apply" and ev.until_s is not None:
                span = self._tracer.span(
                    f"fault.{ev.kind}",
                    track="faults",
                    cat="fault",
                    async_=True,
                    target=ev.target,
                )
                span.__enter__()
                self._spans[idx] = span
            elif phase == "revert":
                span = self._spans.pop(idx, None)
                if span is not None:
                    span.__exit__(None, None, None)
            else:
                self._tracer.instant(
                    f"fault.{ev.kind}", track="faults", cat="fault", target=ev.target
                )

    def _dispatch(self, ev: FaultEvent, phase: str) -> None:
        apply = phase == "apply"
        if ev.kind == "disk_failslow":
            self._disk_failslow(ev, apply)
        elif ev.kind == "server_crash":
            self._server_crash(ev, apply)
        elif ev.kind == "mirror_fail":
            self._mirror_fail(ev, apply)
        elif ev.kind == "net_degrade":
            self._net_degrade(ev, apply)
        elif ev.kind == "net_partition":
            self._net_partition(ev, apply)
        elif ev.kind == "cache_evict":
            self._cache_evict(ev, apply)
        # The safety governor (when attached) reacts after the component
        # state has flipped: crashes/partitions degrade active jobs,
        # cache evictions score against the circuit breaker.
        guard = getattr(self.dualpar, "guard", None) if self.dualpar is not None else None
        if guard is not None:
            guard.on_fault(ev.kind, phase, ev.target)

    # -- per-kind transitions ---------------------------------------------

    def _drives_of(self, server_index: int) -> list:
        device = self.cluster.data_servers[server_index].device
        return list(getattr(device, "members", None) or [device])

    def _disk_failslow(self, ev: FaultEvent, apply: bool) -> None:
        fault = (
            DiskFault(transfer_factor=ev.transfer_factor, extra_seek_s=ev.extra_seek_s)
            if apply
            else None
        )
        for drive in self._drives_of(ev.target):
            drive.fault = fault
        assert self.health is not None
        self.health.mark(ev.target, "slow" if apply else "up")

    def _server_crash(self, ev: FaultEvent, apply: bool) -> None:
        ds = self.cluster.data_servers[ev.target]
        assert self.health is not None
        if apply:
            ds.crash()
            self.health.mark(ev.target, "down")
            if self.dualpar is not None:
                self.dualpar.on_server_fault(ev.target)
        else:
            ds.recover()
            self.health.mark(ev.target, "up")

    def _mirror_fail(self, ev: FaultEvent, apply: bool) -> None:
        device = self.cluster.data_servers[ev.target].device
        assert self.health is not None
        if apply:
            device.fail_member(ev.member)
            self.health.mark(ev.target, "slow")
        else:
            device.repair_member(
                ev.member,
                rebuild_rate_bytes_s=ev.rebuild_rate_bytes_s,
                rebuild_bytes=ev.rebuild_bytes,
            )
            self.health.mark(ev.target, "up")

    def _net_degrade(self, ev: FaultEvent, apply: bool) -> None:
        nf = self.net_fault
        assert nf is not None
        nf.extra_latency_s = ev.extra_latency_s if apply else 0.0
        nf.jitter_s = ev.jitter_s if apply else 0.0

    def _net_partition(self, ev: FaultEvent, apply: bool) -> None:
        nf = self.net_fault
        assert nf is not None
        if apply:
            nf.partition(ev.nodes)
        else:
            nf.heal()

    def _cache_evict(self, ev: FaultEvent, apply: bool) -> None:
        cache = getattr(self.runtime, "global_cache", None)
        if cache is None:
            raise FaultError("cache_evict needs a runtime with a global cache")
        for node in ev.evicted_nodes:
            if apply:
                cache.fail_node(node)
                self._evicted.add(node)
                if self.dualpar is not None:
                    self.dualpar.on_compute_node_fault(node)
            else:
                cache.restore_node(node)
                self._evicted.discard(node)
